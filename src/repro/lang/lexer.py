"""Hand-written lexer for Kernel-C#.

Supports: ``//`` and ``/* */`` comments, decimal and ``0x`` integer literals
with optional ``L`` suffix, floating literals with optional exponent and
``f``/``d`` suffixes, string and char literals with the common escapes.
"""

from __future__ import annotations

from typing import List

from ..errors import LexError
from .tokens import (
    CHAR_LIT,
    DOUBLE_LIT,
    EOF,
    FLOAT_LIT,
    IDENT,
    INT_LIT,
    KEYWORD,
    KEYWORDS,
    LONG_LIT,
    PUNCT,
    PUNCTUATION,
    STRING_LIT,
    Token,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    '"': '"',
    "'": "'",
}


class Lexer:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> LexError:
        return LexError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while True:
            c = self._peek()
            if not c:
                return
            if c in " \t\r\n":
                self._advance()
            elif c == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif c == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._peek() and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if not self._peek():
                    raise self.error("unterminated block comment")
                self._advance(2)
            else:
                return

    def _number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        src = self.source
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            digits_start = self.pos
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            if self.pos == digits_start:
                raise self.error("malformed hex literal")
            value = int(src[digits_start : self.pos], 16)
            if self._peek() in "lL":
                self._advance()
                return Token(LONG_LIT, value, line, column)
            return Token(INT_LIT, value, line, column)

        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = src[start : self.pos]
        suffix = self._peek()
        if suffix and suffix in "fF":
            self._advance()
            return Token(FLOAT_LIT, float(text), line, column)
        if suffix and suffix in "dD":
            self._advance()
            return Token(DOUBLE_LIT, float(text), line, column)
        if suffix and suffix in "lL":
            if is_float:
                raise self.error("L suffix on floating literal")
            self._advance()
            return Token(LONG_LIT, int(text), line, column)
        if is_float:
            return Token(DOUBLE_LIT, float(text), line, column)
        return Token(INT_LIT, int(text), line, column)

    def _string(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        out: List[str] = []
        while True:
            c = self._peek()
            if not c or c == "\n":
                raise self.error("unterminated string literal")
            if c == '"':
                self._advance()
                return Token(STRING_LIT, "".join(out), line, column)
            if c == "\\":
                self._advance()
                esc = self._peek()
                if esc not in _ESCAPES:
                    raise self.error(f"unknown escape \\{esc}")
                out.append(_ESCAPES[esc])
                self._advance()
            else:
                out.append(c)
                self._advance()

    def _char(self) -> Token:
        line, column = self.line, self.column
        self._advance()
        c = self._peek()
        if c == "\\":
            self._advance()
            esc = self._peek()
            if esc not in _ESCAPES:
                raise self.error(f"unknown escape \\{esc}")
            value = _ESCAPES[esc]
            self._advance()
        elif c and c != "'":
            value = c
            self._advance()
        else:
            raise self.error("empty char literal")
        if self._peek() != "'":
            raise self.error("unterminated char literal")
        self._advance()
        return Token(CHAR_LIT, ord(value), line, column)

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            self._skip_trivia()
            c = self._peek()
            if not c:
                out.append(Token(EOF, None, self.line, self.column))
                return out
            if c.isdigit() or (c == "." and self._peek(1).isdigit()):
                out.append(self._number())
            elif c == '"':
                out.append(self._string())
            elif c == "'":
                out.append(self._char())
            elif c.isalpha() or c == "_":
                line, column = self.line, self.column
                start = self.pos
                while self._peek().isalnum() or self._peek() == "_":
                    self._advance()
                word = self.source[start : self.pos]
                kind = KEYWORD if word in KEYWORDS else IDENT
                out.append(Token(kind, word, line, column))
            else:
                for p in PUNCTUATION:
                    if self.source.startswith(p, self.pos):
                        line, column = self.line, self.column
                        self._advance(len(p))
                        out.append(Token(PUNCT, p, line, column))
                        break
                else:
                    raise self.error(f"unexpected character {c!r}")


def tokenize(source: str) -> List[Token]:
    """Tokenize Kernel-C# ``source``, raising :class:`LexError` on failure."""
    return Lexer(source).tokens()
