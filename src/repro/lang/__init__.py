"""``repro.lang`` — the Kernel-C# front end (lexer/parser/checker/codegen).

The single public entry points are :func:`compile_source` and
:func:`compile_file`; everything else is exposed for tests and tooling.
"""

from .compiler import compile_file, compile_source
from .lexer import tokenize
from .parser import parse
from .typecheck import check_program

__all__ = ["compile_source", "compile_file", "tokenize", "parse", "check_program"]
