"""Symbol table structures produced by the type checker and consumed by the
code generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cil.cts import CType
from ..cil.instructions import FieldRef


_next_symbol_id = [0]


@dataclass
class VarSymbol:
    """A local variable or parameter; identity (``uid``) survives shadowing."""

    name: str
    ctype: CType
    kind: str  # 'local' | 'arg'
    #: argument index (including implicit this) for kind == 'arg'
    arg_index: int = -1
    uid: int = field(default_factory=lambda: _next_symbol_id.__setitem__(0, _next_symbol_id[0] + 1) or _next_symbol_id[0])

    @property
    def slot_name(self) -> str:
        """Unique local name used when declaring builder locals."""
        return f"{self.name}${self.uid}"


@dataclass
class FieldInfo:
    name: str
    ctype: CType
    is_static: bool
    owner: "ClassInfo"

    def as_ref(self) -> FieldRef:
        return FieldRef(self.owner.name, self.name, self.ctype, self.is_static)


@dataclass
class MethodInfo:
    name: str
    param_types: List[CType]
    param_names: List[str]
    return_type: CType
    is_static: bool
    is_virtual: bool
    is_override: bool
    is_ctor: bool
    owner: "ClassInfo"
    decl: object = None  # ast.MethodDecl

    @property
    def full_name(self) -> str:
        return f"{self.owner.name}::{self.name}"

    @property
    def dispatches_virtually(self) -> bool:
        return self.is_virtual or self.is_override


@dataclass
class ClassInfo:
    name: str
    base: Optional["ClassInfo"] = None
    is_struct: bool = False
    fields: Dict[str, FieldInfo] = field(default_factory=dict)
    methods: Dict[str, List[MethodInfo]] = field(default_factory=dict)
    decl: object = None  # ast.ClassDecl

    def find_field(self, name: str) -> Optional[FieldInfo]:
        cls: Optional[ClassInfo] = self
        while cls is not None:
            f = cls.fields.get(name)
            if f is not None:
                return f
            cls = cls.base
        return None

    def find_methods(self, name: str) -> List[MethodInfo]:
        """All methods named ``name`` visible on this class (nearest override
        first; base declarations shadowed by same-signature overrides)."""
        out: List[MethodInfo] = []
        seen = set()
        cls: Optional[ClassInfo] = self
        while cls is not None:
            for m in cls.methods.get(name, []):
                key = (m.name, tuple(t.name for t in m.param_types))
                if key not in seen:
                    seen.add(key)
                    out.append(m)
            cls = cls.base
        return out

    def is_subclass_of(self, other: "ClassInfo") -> bool:
        cls: Optional[ClassInfo] = self
        while cls is not None:
            if cls is other:
                return True
            cls = cls.base
        return False
