"""Built-in (intrinsic) runtime surface shared by the front end and the VES.

Mirrors the slice of the Base Class Library the benchmarks use:

* ``Math`` — the full Graph 6-8 routine set.
* ``Console`` — output.
* ``Bench`` — the JGF-style instrumentation API (named timed sections,
  operation/flop counts, validation results); timings come from the VES
  cycle counter, never wall clock.
* ``Threading``: ``Thread`` / ``Monitor`` — the multithreaded micro suite.
* ``Serializer`` — the Serial micro-benchmark's object stream.
* ``GC`` / ``Env`` — heap control and the guest-visible cycle clock.
* ``Str`` concatenation support behind the ``+`` operator on strings.

Each intrinsic is identified by a :class:`~repro.cil.instructions.MethodRef`
with one of these class names; the JIT assigns a per-runtime-profile cycle
cost and the VES implements the semantics in
:mod:`repro.vm.intrinsics`.

The managed exception hierarchy is *not* intrinsic: it is ordinary
Kernel-C# source (:data:`CORELIB_SOURCE`) compiled into every assembly,
exactly like a BCL reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..cil import cts
from ..cil.cts import CType
from ..cil.instructions import MethodRef

I4, I8, R4, R8 = cts.INT32, cts.INT64, cts.FLOAT32, cts.FLOAT64
B, S, O, V = cts.BOOL, cts.STRING, cts.OBJECT, cts.VOID

#: class name -> method name -> list of (param_types, return_type)
INTRINSIC_METHODS: Dict[str, Dict[str, List[Tuple[Tuple[CType, ...], CType]]]] = {
    "System.Math": {
        "Abs": [((I4,), I4), ((I8,), I8), ((R4,), R4), ((R8,), R8)],
        "Max": [((I4, I4), I4), ((I8, I8), I8), ((R4, R4), R4), ((R8, R8), R8)],
        "Min": [((I4, I4), I4), ((I8, I8), I8), ((R4, R4), R4), ((R8, R8), R8)],
        "Sin": [((R8,), R8)],
        "Cos": [((R8,), R8)],
        "Tan": [((R8,), R8)],
        "Asin": [((R8,), R8)],
        "Acos": [((R8,), R8)],
        "Atan": [((R8,), R8)],
        "Atan2": [((R8, R8), R8)],
        "Floor": [((R8,), R8)],
        "Ceiling": [((R8,), R8)],
        "Sqrt": [((R8,), R8)],
        "Exp": [((R8,), R8)],
        "Log": [((R8,), R8)],
        "Pow": [((R8, R8), R8)],
        "Rint": [((R8,), R8)],
        "Round": [((R4,), R4), ((R8,), R8)],
        "Random": [((), R8)],
    },
    "System.Console": {
        "WriteLine": [((S,), V), ((I4,), V), ((I8,), V), ((R8,), V), ((B,), V), ((), V)],
        "Write": [((S,), V), ((I4,), V), ((I8,), V), ((R8,), V)],
    },
    "Bench": {
        "Start": [((S,), V)],
        "Stop": [((S,), V)],
        "Ops": [((S, I8), V)],
        "Flops": [((S, I8), V)],
        "Result": [((S, R8), V)],
        "Fail": [((S,), V)],
    },
    "System.Threading.Thread": {
        # Create(runnable) -> thread id; the runnable's virtual Run() is the body
        "Create": [((O,), I4)],
        "Start": [((I4,), V)],
        "Join": [((I4,), V)],
        "Yield": [((), V)],
        "CurrentId": [((), I4)],
    },
    "System.Threading.Monitor": {
        "Enter": [((O,), V)],
        "Exit": [((O,), V)],
        "Wait": [((O,), V)],
        "Pulse": [((O,), V)],
        "PulseAll": [((O,), V)],
    },
    "Serializer": {
        "Reset": [((), V)],
        "WriteObject": [((O,), I4)],
        "ReadObject": [((), O)],
        "Size": [((), I4)],
    },
    "System.GC": {
        "Collect": [((), V)],
        "TotalAllocated": [((), I8)],
    },
    "Env": {
        "Clock": [((), I8)],
        "ThreadCount": [((), I4)],
    },
    "System.String": {
        "Concat": [
            ((S, S), S), ((S, I4), S), ((S, I8), S), ((S, R4), S), ((S, R8), S),
            ((S, B), S), ((I4, S), S), ((I8, S), S), ((R4, S), S), ((R8, S), S),
            ((B, S), S), ((S, O), S),
        ],
        "Equals": [((S, S), B)],
        "Length": [((S,), I4)],
    },
    "System.Array": {
        # instance-style helpers the checker lowers member access to
        "GetLength": [((O, I4), I4)],
    },
}

#: short alias -> intrinsic class name, as the front end sees them
INTRINSIC_ALIASES: Dict[str, str] = {
    "Math": "System.Math",
    "Console": "System.Console",
    "Bench": "Bench",
    "Thread": "System.Threading.Thread",
    "Monitor": "System.Threading.Monitor",
    "Serializer": "Serializer",
    "GC": "System.GC",
    "Env": "Env",
}

#: constants reachable as ``Alias.Name``
INTRINSIC_CONSTANTS: Dict[Tuple[str, str], Tuple[CType, object]] = {
    ("System.Math", "PI"): (R8, 3.141592653589793),
    ("System.Math", "E"): (R8, 2.718281828459045),
    ("int", "MaxValue"): (I4, 2147483647),
    ("int", "MinValue"): (I4, -2147483648),
    ("long", "MaxValue"): (I8, 9223372036854775807),
    ("long", "MinValue"): (I8, -9223372036854775808),
    ("short", "MaxValue"): (I4, 32767),
    ("short", "MinValue"): (I4, -32768),
    ("byte", "MaxValue"): (I4, 255),
    ("double", "MaxValue"): (R8, 1.7976931348623157e308),
    ("double", "MinValue"): (R8, -1.7976931348623157e308),
    ("double", "Epsilon"): (R8, 5e-324),
    ("float", "MaxValue"): (R4, 3.4028235e38),
}


def find_intrinsic(
    class_name: str, method: str, arg_types: Sequence[CType]
) -> Optional[MethodRef]:
    """Resolve an intrinsic overload accepting ``arg_types`` (with implicit
    numeric widening), or ``None``."""
    table = INTRINSIC_METHODS.get(class_name)
    if table is None:
        return None
    overloads = table.get(method)
    if not overloads:
        return None
    from .typecheck import implicit_convertible  # local import to avoid cycle

    best: Optional[Tuple[int, Tuple[Tuple[CType, ...], CType]]] = None
    for params, ret in overloads:
        if len(params) != len(arg_types):
            continue
        score = 0
        ok = True
        for got, want in zip(arg_types, params):
            got_s = cts.stack_type(got)
            if got_s is want:
                continue
            if implicit_convertible(got, want):
                score += 1
            else:
                ok = False
                break
        if ok and (best is None or score < best[0]):
            best = (score, (params, ret))
    if best is None:
        return None
    params, ret = best[1]
    return MethodRef(class_name, method, params, ret, is_static=True)


#: the managed core library, compiled into every assembly
CORELIB_SOURCE = """
class Exception {
    string Message;
    Exception() { this.Message = ""; }
    Exception(string m) { this.Message = m; }
    virtual string GetMessage() { return this.Message; }
}
class ArithmeticException : Exception {
    ArithmeticException() { this.Message = "arithmetic error"; }
    ArithmeticException(string m) { this.Message = m; }
}
class DivideByZeroException : ArithmeticException {
    DivideByZeroException() { this.Message = "division by zero"; }
    DivideByZeroException(string m) { this.Message = m; }
}
class NullReferenceException : Exception {
    NullReferenceException() { this.Message = "null reference"; }
    NullReferenceException(string m) { this.Message = m; }
}
class IndexOutOfRangeException : Exception {
    IndexOutOfRangeException() { this.Message = "index out of range"; }
    IndexOutOfRangeException(string m) { this.Message = m; }
}
class InvalidCastException : Exception {
    InvalidCastException() { this.Message = "invalid cast"; }
    InvalidCastException(string m) { this.Message = m; }
}
class ArgumentException : Exception {
    ArgumentException() { this.Message = "bad argument"; }
    ArgumentException(string m) { this.Message = m; }
}
class OutOfMemoryException : Exception {
    OutOfMemoryException() { this.Message = "out of memory"; }
    OutOfMemoryException(string m) { this.Message = m; }
}
class SynchronizationException : Exception {
    SynchronizationException() { this.Message = "synchronization error"; }
    SynchronizationException(string m) { this.Message = m; }
}
class StackOverflowException : Exception {
    StackOverflowException() { this.Message = "stack overflow"; }
    StackOverflowException(string m) { this.Message = m; }
}
"""

#: classes defined by CORELIB_SOURCE (kept in sync by a unit test)
CORELIB_CLASSES = (
    "Exception",
    "ArithmeticException",
    "DivideByZeroException",
    "NullReferenceException",
    "IndexOutOfRangeException",
    "InvalidCastException",
    "ArgumentException",
    "OutOfMemoryException",
    "SynchronizationException",
    "StackOverflowException",
)
