"""AST node definitions for Kernel-C#.

Nodes are plain dataclasses.  Type-checking annotates expression nodes in
place: ``node.ctype`` (the expression's CTS type) plus resolution fields the
code generator consumes (``node.symbol``, ``node.method``...).  That keeps
the pipeline single-pass-per-stage without a parallel typed tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..cil.cts import CType


class Node:
    line: int = 0


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    line: int = 0

    def __post_init__(self) -> None:
        #: CTS type stamped by the type checker
        self.ctype: Optional[CType] = None


@dataclass
class IntLit(Expr):
    value: int = 0
    is_long: bool = False


@dataclass
class FloatLit(Expr):
    value: float = 0.0
    is_single: bool = False


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class CharLit(Expr):
    value: int = 0


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Name(Expr):
    """A bare identifier; the type checker resolves it to a local, parameter,
    field (implicit this / own statics), or a type name (left of a static
    member access)."""

    ident: str = ""


@dataclass
class ThisExpr(Expr):
    pass


@dataclass
class Member(Expr):
    """``target.name`` — field access, static member, array ``Length``."""

    target: Optional[Expr] = None
    name: str = ""


@dataclass
class Index(Expr):
    """``target[i]`` or ``target[i, j]``."""

    target: Optional[Expr] = None
    indices: List[Expr] = field(default_factory=list)


@dataclass
class Call(Expr):
    """Any invocation: ``F(x)``, ``obj.F(x)``, ``Class.F(x)``, ``base.F(x)``."""

    callee: Optional[Expr] = None  # Name or Member
    args: List[Expr] = field(default_factory=list)
    is_base_call: bool = False


@dataclass
class NewObject(Expr):
    type_name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    """``new T[e]``, ``new T[e1, e2]`` or jagged ``new T[e][]...``."""

    element: object = None  # type expression, resolved by checker
    dims: List[Expr] = field(default_factory=list)
    #: extra empty bracket groups for jagged allocations: new int[n][] -> 1
    extra_ranks: List[int] = field(default_factory=list)


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Logical(Expr):
    """Short-circuit ``&&`` / ``||``."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    other: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """``target op= value`` where op is '' for plain assignment."""

    target: Optional[Expr] = None
    op: str = ""
    value: Optional[Expr] = None


@dataclass
class IncDec(Expr):
    target: Optional[Expr] = None
    op: str = "++"
    prefix: bool = False


@dataclass
class Cast(Expr):
    type_expr: object = None
    operand: Optional[Expr] = None


# --------------------------------------------------------------------------
# type expressions (syntactic; resolved to CTS types by the checker)
# --------------------------------------------------------------------------


@dataclass
class TypeExpr(Node):
    """``name`` plus array rank suffixes, e.g. double[,][] -> ranks [2, 1]."""

    name: str = ""
    ranks: List[int] = field(default_factory=list)
    line: int = 0

    def __str__(self) -> str:
        return self.name + "".join("[" + "," * (r - 1) + "]" for r in self.ranks)


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    line: int = 0


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    type_expr: Optional[TypeExpr] = None
    names: List[str] = field(default_factory=list)
    inits: List[Optional[Expr]] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None  # VarDecl or ExprStmt
    cond: Optional[Expr] = None
    update: List[Expr] = field(default_factory=list)
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Throw(Stmt):
    value: Optional[Expr] = None  # None => rethrow


@dataclass
class CatchClause(Node):
    type_name: str = ""
    var_name: Optional[str] = None
    body: Optional[Block] = None
    line: int = 0


@dataclass
class Try(Stmt):
    body: Optional[Block] = None
    catches: List[CatchClause] = field(default_factory=list)
    finally_body: Optional[Block] = None


@dataclass
class Lock(Stmt):
    """``lock (expr) body`` — sugar for Monitor.Enter/try-finally-Exit."""

    target: Optional[Expr] = None
    body: Optional[Stmt] = None


# --------------------------------------------------------------------------
# declarations
# --------------------------------------------------------------------------


@dataclass
class Param(Node):
    type_expr: Optional[TypeExpr] = None
    name: str = ""
    line: int = 0


@dataclass
class FieldDecl(Node):
    type_expr: Optional[TypeExpr] = None
    name: str = ""
    init: Optional[Expr] = None
    is_static: bool = False
    line: int = 0


@dataclass
class MethodDecl(Node):
    name: str = ""
    return_type: Optional[TypeExpr] = None  # None => constructor
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None
    is_static: bool = False
    is_virtual: bool = False
    is_override: bool = False
    is_ctor: bool = False
    #: ``: base(args)`` initializer on a constructor, if present
    base_args: Optional[List[Expr]] = None
    line: int = 0


@dataclass
class ClassDecl(Node):
    name: str = ""
    base_name: Optional[str] = None
    is_struct: bool = False
    fields: List[FieldDecl] = field(default_factory=list)
    methods: List[MethodDecl] = field(default_factory=list)
    line: int = 0


@dataclass
class Program(Node):
    classes: List[ClassDecl] = field(default_factory=list)
