"""Token kinds and the token object for the Kernel-C# lexer."""

from __future__ import annotations

from dataclasses import dataclass

# token kinds
EOF = "eof"
IDENT = "ident"
KEYWORD = "keyword"
INT_LIT = "int"
LONG_LIT = "long"
FLOAT_LIT = "float"
DOUBLE_LIT = "double"
STRING_LIT = "string"
CHAR_LIT = "char"
PUNCT = "punct"

KEYWORDS = frozenset(
    """
    class struct new return if else while do for break continue
    static virtual override public private void int long short sbyte byte
    ushort uint ulong char float double bool object string true false null this base
    try catch finally throw lock const using namespace ref out
    """.split()
)

#: multi-character punctuation, longest first for maximal munch
PUNCTUATION = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "<<", ">>", "++", "--",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "=", "<", ">", "+", "-",
    "*", "/", "%", "!", "~", "&", "|", "^", "?", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str
    value: object
    line: int
    column: int

    @property
    def text(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"
