"""CIL code generation from the checked Kernel-C# AST.

Follows the shapes csc 7.10 (the CLR 1.1 C# compiler the paper used) emits:

* comparisons in conditions become conditional branches (``blt``/``bge``...),
  while comparisons used as values become ``ceq``/``cgt``/``clt`` chains;
* ``&&``/``||`` short-circuit with branches;
* try/catch/finally lowers to nested exception regions where the ``finally``
  wraps the try+catches, and control leaves protected regions only via
  ``leave`` (returns inside ``try`` route through a ``$retval`` local);
* compound assignment and post-increment on fields/elements stage operands
  through compiler temporaries (``$tmp`` locals), exactly the temp-heavy
  pattern period compilers produced — which is precisely what gives the
  enregistration quality of each JIT its leverage (paper section 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cil import cts, opcodes as op
from ..cil.builder import Label, MethodBuilder
from ..cil.cts import CType
from ..cil.instructions import CATCH, FINALLY, FieldRef, MethodRef
from ..cil.metadata import Assembly, ClassDef, FieldDef, MethodDef
from ..errors import CompileError
from . import ast_nodes as ast
from .symbols import ClassInfo, FieldInfo, MethodInfo, VarSymbol
from .typecheck import Checker

_MONITOR = "System.Threading.Monitor"


def _conv_opcode(t: CType) -> int:
    return {
        "int8": op.CONV_I1,
        "uint8": op.CONV_U1,
        "int16": op.CONV_I2,
        "uint16": op.CONV_U2,
        "char": op.CONV_U2,
        "int32": op.CONV_I4,
        "int64": op.CONV_I8,
        "float32": op.CONV_R4,
        "float64": op.CONV_R8,
    }[t.name]


def _is_struct_type(t: CType) -> bool:
    return isinstance(t, cts.NamedType) and t.is_value_type


class _LoopContext:
    __slots__ = ("break_label", "continue_label", "protect_depth")

    def __init__(self, break_label: Label, continue_label: Label, protect_depth: int):
        self.break_label = break_label
        self.continue_label = continue_label
        self.protect_depth = protect_depth


class MethodGen:
    """Generates the body of one method."""

    def __init__(self, gen: "CodeGen", info: ClassInfo, mi: MethodInfo, mdef: MethodDef):
        self.gen = gen
        self.info = info
        self.mi = mi
        self.b = MethodBuilder(mdef)
        self._sym_slots: Dict[int, int] = {}
        self._tmp_pool: Dict[str, List[int]] = {}
        self._tmp_counter = 0
        self._loops: List[_LoopContext] = []
        self._protect_depth = 0
        self._ret_label: Optional[Label] = None
        self._ret_local: Optional[int] = None

    # ---------------------------------------------------------------- plumbing

    def slot(self, sym: VarSymbol) -> int:
        s = self._sym_slots.get(sym.uid)
        if s is None:
            s = self.b.declare_local(sym.slot_name, sym.ctype)
            self._sym_slots[sym.uid] = s
        return s

    def temp(self, ctype: CType) -> int:
        pool = self._tmp_pool.setdefault(ctype.name, [])
        if pool:
            return pool.pop()
        self._tmp_counter += 1
        return self.b.declare_local(f"$tmp{self._tmp_counter}.{ctype.name}", ctype)

    def release(self, ctype: CType, slot: int) -> None:
        self._tmp_pool.setdefault(ctype.name, []).append(slot)

    def error(self, message: str, node: ast.Node) -> CompileError:
        return CompileError(message, getattr(node, "line", 0) or 0)

    # ------------------------------------------------------------------- entry

    def generate(self) -> MethodDef:
        decl: ast.MethodDecl = self.mi.decl
        self.b.current_line = decl.line
        if self.mi.is_ctor and getattr(decl, "base_ctor", None) is not None:
            base_ctor: MethodInfo = decl.base_ctor
            self.b.emit(op.LDARG, 0)
            for a in decl.base_args:
                self.emit_expr(a)
            self.b.emit(op.CALL, self.gen.method_ref(base_ctor))
        # returns inside protected regions route through a local
        if self.mi.return_type is not cts.VOID and _has_try(decl.body):
            self._ret_label = self.b.new_label("$ret")
            self._ret_local = self.b.declare_local("$retval", self.mi.return_type)
        self.emit_block(decl.body)
        if self.mi.return_type is cts.VOID:
            self.b.emit(op.RET)
        else:
            # checker guarantees all paths return; a trailing unreachable
            # guard keeps the verifier's fall-off check satisfied for loops
            # it cannot prove terminate
            pass
        if self._ret_label is not None:
            self.b.mark_label(self._ret_label)
            if self._ret_local is not None:
                self.b.emit(op.LDLOC, self._ret_local)
            self.b.emit(op.RET)
        return self.b.build()

    # -------------------------------------------------------------- statements

    def emit_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self.emit_stmt(stmt)

    def emit_stmt(self, stmt: ast.Stmt) -> None:
        self.b.current_line = stmt.line or self.b.current_line
        if isinstance(stmt, ast.Block):
            self.emit_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            for sym, init in zip(stmt.symbols, stmt.inits):
                slot = self.slot(sym)
                if init is not None:
                    self.emit_expr(init)
                    if _is_struct_type(sym.ctype):
                        self.b.emit(op.STRUCT_COPY, sym.ctype)
                    self.b.emit(op.STLOC, slot)
        elif isinstance(stmt, ast.ExprStmt):
            self.emit_expr_stmt(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.emit_if(stmt)
        elif isinstance(stmt, ast.While):
            self.emit_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.emit_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self.emit_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.emit_return(stmt)
        elif isinstance(stmt, ast.Break):
            ctx = self._loops[-1]
            opcode = op.LEAVE if self._protect_depth > ctx.protect_depth else op.BR
            self.b.emit_branch(opcode, ctx.break_label)
        elif isinstance(stmt, ast.Continue):
            ctx = self._loops[-1]
            opcode = op.LEAVE if self._protect_depth > ctx.protect_depth else op.BR
            self.b.emit_branch(opcode, ctx.continue_label)
        elif isinstance(stmt, ast.Throw):
            if stmt.value is None:
                self.b.emit(op.RETHROW)
            else:
                self.emit_expr(stmt.value)
                self.b.emit(op.THROW)
        elif isinstance(stmt, ast.Try):
            self.emit_try(stmt)
        elif isinstance(stmt, ast.Lock):
            self.emit_lock(stmt)
        else:  # pragma: no cover - defensive
            raise self.error(f"cannot emit {type(stmt).__name__}", stmt)

    def emit_expr_stmt(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Assign):
            self.emit_assign(expr, need_value=False)
        elif isinstance(expr, ast.IncDec):
            self.emit_incdec(expr, need_value=False)
        elif isinstance(expr, ast.Call):
            self.emit_call(expr)
            if expr.ctype is not cts.VOID:
                self.b.emit(op.POP)
        else:
            # evaluate for effect; discard value (e.g. `new Foo();`)
            self.emit_expr(expr)
            if expr.ctype is not cts.VOID:
                self.b.emit(op.POP)

    def emit_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            self.emit_expr(stmt.value)
            if _is_struct_type(self.mi.return_type):
                self.b.emit(op.STRUCT_COPY, self.mi.return_type)
        if self._protect_depth > 0:
            if stmt.value is not None:
                self.b.emit(op.STLOC, self._ret_local)
                self.b.emit_branch(op.LEAVE, self._ret_label)
            else:
                # void return out of a protected region
                if self._ret_label is None:
                    self._ret_label = self.b.new_label("$ret")
                self.b.emit_branch(op.LEAVE, self._ret_label)
        else:
            if stmt.value is not None and self._ret_label is not None:
                # keep a single ret site when a $retval local exists
                self.b.emit(op.STLOC, self._ret_local)
                self.b.emit_branch(op.BR, self._ret_label)
            else:
                self.b.emit(op.RET)

    def emit_if(self, stmt: ast.If) -> None:
        else_label = self.b.new_label("else")
        self.emit_branch_unless(stmt.cond, else_label)
        self.emit_stmt(stmt.then)
        if stmt.other is not None:
            end_label = self.b.new_label("endif")
            if not _ends_dead(self.b):
                self.b.emit_branch(op.BR, end_label)
            self.b.mark_label(else_label)
            self.emit_stmt(stmt.other)
            self.b.mark_label(end_label)
        else:
            self.b.mark_label(else_label)

    def emit_while(self, stmt: ast.While) -> None:
        # csc shape: jump to the test at the bottom, body first
        test = self.b.new_label("while.test")
        body = self.b.new_label("while.body")
        end = self.b.new_label("while.end")
        self.b.emit_branch(op.BR, test)
        self.b.mark_label(body)
        self._loops.append(_LoopContext(end, test, self._protect_depth))
        self.emit_stmt(stmt.body)
        self._loops.pop()
        self.b.mark_label(test)
        self.emit_branch_if(stmt.cond, body)
        self.b.mark_label(end)

    def emit_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.b.new_label("do.body")
        test = self.b.new_label("do.test")
        end = self.b.new_label("do.end")
        self.b.mark_label(body)
        self._loops.append(_LoopContext(end, test, self._protect_depth))
        self.emit_stmt(stmt.body)
        self._loops.pop()
        self.b.mark_label(test)
        self.emit_branch_if(stmt.cond, body)
        self.b.mark_label(end)

    def emit_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.emit_stmt(stmt.init)
        test = self.b.new_label("for.test")
        body = self.b.new_label("for.body")
        cont = self.b.new_label("for.continue")
        end = self.b.new_label("for.end")
        self.b.emit_branch(op.BR, test)
        self.b.mark_label(body)
        self._loops.append(_LoopContext(end, cont, self._protect_depth))
        self.emit_stmt(stmt.body)
        self._loops.pop()
        self.b.mark_label(cont)
        for u in stmt.update:
            self.emit_expr_stmt(u)
        self.b.mark_label(test)
        if stmt.cond is not None:
            self.emit_branch_if(stmt.cond, body)
        else:
            self.b.emit_branch(op.BR, body)
        self.b.mark_label(end)

    def emit_try(self, stmt: ast.Try) -> None:
        has_finally = stmt.finally_body is not None
        outer_start = self.b.position
        end = self.b.new_label("try.end")

        self._protect_depth += 1
        try_start = self.b.position
        self.emit_block(stmt.body)
        if not _ends_dead(self.b):
            self.b.emit_branch(op.LEAVE, end)
        try_end = self.b.position

        catch_regions: List[Tuple[int, int, ast.CatchClause]] = []
        for clause in stmt.catches:
            h_start = self.b.position
            if clause.var_symbol is not None:
                self.b.emit(op.STLOC, self.slot(clause.var_symbol))
            else:
                self.b.emit(op.POP)
            self.emit_block(clause.body)
            if not _ends_dead(self.b):
                self.b.emit_branch(op.LEAVE, end)
            catch_regions.append((h_start, self.b.position, clause))
        self._protect_depth -= 1

        for h_start, h_end, clause in catch_regions:
            self.b.add_region(
                CATCH, try_start, try_end, h_start, h_end,
                catch_type=clause.class_info.name,
            )

        if has_finally:
            inner_end = self.b.position
            f_start = self.b.position
            self.emit_block(stmt.finally_body)
            self.b.emit(op.ENDFINALLY)
            f_end = self.b.position
            self.b.add_region(FINALLY, outer_start, inner_end, f_start, f_end)
        self.b.mark_label(end)

    def emit_lock(self, stmt: ast.Lock) -> None:
        """``lock (x) body`` => t = x; Monitor.Enter(t); try body finally Exit(t)."""
        ttype = stmt.target.ctype
        tmp = self.temp(cts.OBJECT)
        self.emit_expr(stmt.target)
        self.b.emit(op.STLOC, tmp)
        self.b.emit(op.LDLOC, tmp)
        self.b.emit(op.CALL, MethodRef(_MONITOR, "Enter", (cts.OBJECT,), cts.VOID))
        end = self.b.new_label("lock.end")
        outer_start = self.b.position
        self._protect_depth += 1
        self.emit_stmt(stmt.body)
        if not _ends_dead(self.b):
            self.b.emit_branch(op.LEAVE, end)
        self._protect_depth -= 1
        inner_end = self.b.position
        f_start = self.b.position
        self.b.emit(op.LDLOC, tmp)
        self.b.emit(op.CALL, MethodRef(_MONITOR, "Exit", (cts.OBJECT,), cts.VOID))
        self.b.emit(op.ENDFINALLY)
        f_end = self.b.position
        self.b.add_region(FINALLY, outer_start, inner_end, f_start, f_end)
        self.b.mark_label(end)
        self.release(cts.OBJECT, tmp)

    # ----------------------------------------------------------- branch helpers

    _CMP_BRANCH = {
        "==": op.BEQ, "!=": op.BNE, "<": op.BLT, ">": op.BGT,
        "<=": op.BLE, ">=": op.BGE,
    }
    _CMP_BRANCH_NEG = {
        "==": op.BNE, "!=": op.BEQ, "<": op.BGE, ">": op.BLE,
        "<=": op.BGT, ">=": op.BLT,
    }

    def emit_branch_if(self, cond: ast.Expr, target: Label) -> None:
        """Branch to ``target`` when cond is true."""
        self._emit_cond_branch(cond, target, True)

    def emit_branch_unless(self, cond: ast.Expr, target: Label) -> None:
        self._emit_cond_branch(cond, target, False)

    def _emit_cond_branch(self, cond: ast.Expr, target: Label, when: bool) -> None:
        if isinstance(cond, ast.BoolLit):
            if cond.value == when:
                self.b.emit_branch(op.BR, target)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._emit_cond_branch(cond.operand, target, not when)
            return
        if (
            isinstance(cond, ast.Binary)
            and cond.op in self._CMP_BRANCH
            and getattr(cond, "prom", None) is not None
            and not getattr(cond, "string_equality", False)
        ):
            self.emit_expr(cond.left)
            self.emit_expr(cond.right)
            table = self._CMP_BRANCH if when else self._CMP_BRANCH_NEG
            self.b.emit_branch(table[cond.op], target)
            return
        if isinstance(cond, ast.Binary) and cond.op in ("==", "!=") and not getattr(cond, "string_equality", False) and (cond.left.ctype.is_reference or cond.right.ctype.is_reference):
            self.emit_expr(cond.left)
            self.emit_expr(cond.right)
            table = self._CMP_BRANCH if when else self._CMP_BRANCH_NEG
            self.b.emit_branch(table[cond.op], target)
            return
        if isinstance(cond, ast.Logical):
            if cond.op == "&&":
                if when:
                    skip = self.b.new_label("and.skip")
                    self._emit_cond_branch(cond.left, skip, False)
                    self._emit_cond_branch(cond.right, target, True)
                    self.b.mark_label(skip)
                else:
                    self._emit_cond_branch(cond.left, target, False)
                    self._emit_cond_branch(cond.right, target, False)
            else:  # ||
                if when:
                    self._emit_cond_branch(cond.left, target, True)
                    self._emit_cond_branch(cond.right, target, True)
                else:
                    skip = self.b.new_label("or.skip")
                    self._emit_cond_branch(cond.left, skip, True)
                    self._emit_cond_branch(cond.right, target, False)
                    self.b.mark_label(skip)
            return
        # general: evaluate to a bool value, branch on it
        self.emit_expr(cond)
        self.b.emit_branch(op.BRTRUE if when else op.BRFALSE, target)

    # ------------------------------------------------------------- expressions

    def emit_expr(self, expr: ast.Expr) -> None:
        """Emit ``expr``, leaving its value on the evaluation stack, then any
        recorded implicit conversion."""
        method = getattr(self, f"_emit_{type(expr).__name__}")
        method(expr)
        self.apply_coercion(expr)

    def apply_coercion(self, expr: ast.Expr) -> None:
        co = getattr(expr, "coerce_to", None)
        if co is None:
            return
        kind, t = co
        if kind == "conv":
            self.b.emit(_conv_opcode(t))
        elif kind == "box":
            if _is_struct_type(t):
                self.b.emit(op.STRUCT_COPY, t)
            self.b.emit(op.BOX, t)
        else:  # pragma: no cover - defensive
            raise self.error(f"unknown coercion {kind}", expr)

    def _emit_IntLit(self, e: ast.IntLit) -> None:
        self.b.emit(op.LDC_I8 if e.ctype is cts.INT64 else op.LDC_I4, e.value)

    def _emit_FloatLit(self, e: ast.FloatLit) -> None:
        self.b.emit(op.LDC_R4 if e.is_single else op.LDC_R8, e.value)

    def _emit_BoolLit(self, e: ast.BoolLit) -> None:
        self.b.emit(op.LDC_I4, 1 if e.value else 0)

    def _emit_StringLit(self, e: ast.StringLit) -> None:
        self.b.emit(op.LDSTR, e.value)

    def _emit_CharLit(self, e: ast.CharLit) -> None:
        self.b.emit(op.LDC_I4, e.value)

    def _emit_NullLit(self, e: ast.NullLit) -> None:
        self.b.emit(op.LDNULL)

    def _emit_ThisExpr(self, e: ast.ThisExpr) -> None:
        self.b.emit(op.LDARG, 0)

    def _emit_Name(self, e: ast.Name) -> None:
        kind, payload = e.res
        if kind == "local":
            self.b.emit(op.LDLOC, self.slot(payload))
        elif kind == "arg":
            self.b.emit(op.LDARG, payload.arg_index)
        elif kind == "field":
            self.b.emit(op.LDARG, 0)
            self.b.emit(op.LDFLD, payload.as_ref())
        elif kind == "sfield":
            self.b.emit(op.LDSFLD, payload.as_ref())
        else:
            raise self.error(f"name {e.ident!r} is not a value", e)

    def _emit_Member(self, e: ast.Member) -> None:
        res = e.res
        if res[0] == "sfield":
            self.b.emit(op.LDSFLD, res[1].as_ref())
        elif res[0] == "field":
            self.emit_expr(e.target)
            self.b.emit(op.LDFLD, res[1].as_ref())
        elif res[0] == "arraylen":
            self.emit_expr(e.target)
            self.b.emit(op.LDLEN)
        elif res[0] == "strlen":
            self.emit_expr(e.target)
            self.b.emit(
                op.CALL,
                MethodRef("System.String", "Length", (cts.STRING,), cts.INT32),
            )
        elif res[0] == "const":
            ctype, value = res[1]
            if ctype is cts.INT32:
                self.b.emit(op.LDC_I4, value)
            elif ctype is cts.INT64:
                self.b.emit(op.LDC_I8, value)
            elif ctype is cts.FLOAT32:
                self.b.emit(op.LDC_R4, value)
            else:
                self.b.emit(op.LDC_R8, value)
        else:  # pragma: no cover - defensive
            raise self.error(f"cannot load member {e.name!r}", e)

    def _emit_Index(self, e: ast.Index) -> None:
        self.emit_expr(e.target)
        for idx in e.indices:
            self.emit_expr(idx)
        if e.rank == 1:
            self.b.emit(op.LDELEM, e.elem_ctype)
        else:
            self.b.emit(op.LDELEM_MD, (e.elem_ctype, e.rank))

    def _emit_NewObject(self, e: ast.NewObject) -> None:
        for a in e.args:
            self.emit_expr(a)
            if _is_struct_type(a.ctype) and not getattr(a, "coerce_to", None):
                self.b.emit(op.STRUCT_COPY, a.ctype)
        if e.ctor is not None:
            ref = self.gen.method_ref(e.ctor)
        else:
            ref = MethodRef(e.class_info.name, ".ctor", (), cts.VOID, is_static=False)
        self.b.emit(op.NEWOBJ, ref)

    def _emit_NewArray(self, e: ast.NewArray) -> None:
        for d in e.dims:
            self.emit_expr(d)
        if e.rank == 1:
            self.b.emit(op.NEWARR, e.elem_ctype)
        else:
            self.b.emit(op.NEWARR_MD, (e.elem_ctype, e.rank))

    def _emit_Unary(self, e: ast.Unary) -> None:
        self.emit_expr(e.operand)
        if e.op == "-":
            self.b.emit(op.NEG)
        elif e.op == "~":
            self.b.emit(op.NOT)
        elif e.op == "!":
            self.b.emit(op.LDC_I4, 0)
            self.b.emit(op.CEQ)

    _BINOP = {"+": op.ADD, "-": op.SUB, "*": op.MUL, "/": op.DIV, "%": op.REM,
              "&": op.AND, "|": op.OR, "^": op.XOR, "<<": op.SHL, ">>": op.SHR}

    def _emit_Binary(self, e: ast.Binary) -> None:
        concat = getattr(e, "concat_ref", None)
        if concat is not None:
            self.emit_expr(e.left)
            self.emit_expr(e.right)
            self.b.emit(op.CALL, concat)
            return
        if getattr(e, "string_equality", False):
            self.emit_expr(e.left)
            self.emit_expr(e.right)
            self.b.emit(
                op.CALL,
                MethodRef("System.String", "Equals", (cts.STRING, cts.STRING), cts.BOOL),
            )
            if e.op == "!=":
                self.b.emit(op.LDC_I4, 0)
                self.b.emit(op.CEQ)
            return
        self.emit_expr(e.left)
        self.emit_expr(e.right)
        opcode = self._BINOP.get(e.op)
        if opcode is not None:
            self.b.emit(opcode)
            return
        # comparison as a value
        if e.op == "==":
            self.b.emit(op.CEQ)
        elif e.op == "!=":
            self.b.emit(op.CEQ)
            self.b.emit(op.LDC_I4, 0)
            self.b.emit(op.CEQ)
        elif e.op == "<":
            self.b.emit(op.CLT)
        elif e.op == ">":
            self.b.emit(op.CGT)
        elif e.op == "<=":
            self.b.emit(op.CGT)
            self.b.emit(op.LDC_I4, 0)
            self.b.emit(op.CEQ)
        elif e.op == ">=":
            self.b.emit(op.CLT)
            self.b.emit(op.LDC_I4, 0)
            self.b.emit(op.CEQ)
        else:  # pragma: no cover - defensive
            raise self.error(f"cannot emit operator {e.op}", e)

    def _emit_Logical(self, e: ast.Logical) -> None:
        out = self.b.new_label("bool.out")
        shortcut = self.b.new_label("bool.short")
        if e.op == "&&":
            self._emit_cond_branch(e.left, shortcut, False)
            self.emit_expr(e.right)
            self.b.emit_branch(op.BR, out)
            self.b.mark_label(shortcut)
            self.b.emit(op.LDC_I4, 0)
        else:
            self._emit_cond_branch(e.left, shortcut, True)
            self.emit_expr(e.right)
            self.b.emit_branch(op.BR, out)
            self.b.mark_label(shortcut)
            self.b.emit(op.LDC_I4, 1)
        self.b.mark_label(out)

    def _emit_Conditional(self, e: ast.Conditional) -> None:
        other = self.b.new_label("cond.else")
        out = self.b.new_label("cond.out")
        self.emit_branch_unless(e.cond, other)
        self.emit_expr(e.then)
        self.b.emit_branch(op.BR, out)
        self.b.mark_label(other)
        self.emit_expr(e.other)
        self.b.mark_label(out)

    def _emit_Assign(self, e: ast.Assign) -> None:
        self.emit_assign(e, need_value=True)

    def _emit_IncDec(self, e: ast.IncDec) -> None:
        self.emit_incdec(e, need_value=True)

    def _emit_Cast(self, e: ast.Cast) -> None:
        self.emit_expr(e.operand)
        kind = e.kind
        if kind == "numeric":
            self.b.emit(_conv_opcode(e.target_ctype))
        elif kind == "identity":
            pass
        elif kind == "box":
            src = e.operand.ctype
            if _is_struct_type(src):
                self.b.emit(op.STRUCT_COPY, src)
            self.b.emit(op.BOX, src)
        elif kind in ("unbox", "unbox_struct"):
            self.b.emit(op.UNBOX, e.target_ctype)
        elif kind == "downcast":
            self.b.emit(op.CASTCLASS, e.target_ctype)
        else:  # pragma: no cover - defensive
            raise self.error(f"unknown cast kind {kind}", e)

    def _emit_Call(self, e: ast.Call) -> None:
        self.emit_call(e)

    def emit_call(self, e: ast.Call) -> None:
        kind = e.call_kind
        if kind == "intrinsic":
            for a in e.args:
                self.emit_expr(a)
            self.b.emit(op.CALL, e.method_ref)
            return
        if kind == "arraygetlength":
            self.emit_expr(e.callee.target)
            self.emit_expr(e.args[0])
            self.b.emit(op.CALL, e.method_ref)
            return
        mi: MethodInfo = e.method
        # receiver
        if not mi.is_static:
            if kind == "base" or getattr(e, "implicit_this", False):
                self.b.emit(op.LDARG, 0)
            else:
                assert isinstance(e.callee, ast.Member)
                self.emit_expr(e.callee.target)
        for a in e.args:
            self.emit_expr(a)
            if _is_struct_type(a.ctype) and not getattr(a, "coerce_to", None):
                self.b.emit(op.STRUCT_COPY, a.ctype)
        ref = self.gen.method_ref(mi)
        if kind == "virtual":
            self.b.emit(op.CALLVIRT, ref)
        else:
            self.b.emit(op.CALL, ref)

    # ------------------------------------------------------------- assignment

    def _maybe_struct_copy(self, value: ast.Expr, target_type: CType) -> None:
        if _is_struct_type(target_type) and not getattr(value, "coerce_to", None):
            self.b.emit(op.STRUCT_COPY, target_type)

    def emit_assign(self, e: ast.Assign, need_value: bool) -> None:
        target = e.target
        if e.op:
            self.emit_compound_assign(e, need_value)
            return
        ttype = e.ctype
        if isinstance(target, ast.Name) and target.res[0] in ("local", "arg"):
            self.emit_expr(e.value)
            self._maybe_struct_copy(e.value, ttype)
            if need_value:
                self.b.emit(op.DUP)
            if target.res[0] == "local":
                self.b.emit(op.STLOC, self.slot(target.res[1]))
            else:
                self.b.emit(op.STARG, target.res[1].arg_index)
            return
        if (isinstance(target, ast.Name) and target.res[0] == "sfield") or (
            isinstance(target, ast.Member) and target.res[0] == "sfield"
        ):
            fi: FieldInfo = target.res[1]
            self.emit_expr(e.value)
            self._maybe_struct_copy(e.value, ttype)
            if need_value:
                self.b.emit(op.DUP)
            self.b.emit(op.STSFLD, fi.as_ref())
            return
        if isinstance(target, ast.Name) and target.res[0] == "field":
            fi = target.res[1]
            self.b.emit(op.LDARG, 0)
            self.emit_expr(e.value)
            self._maybe_struct_copy(e.value, ttype)
            if need_value:
                tmp = self.temp(ttype)
                self.b.emit(op.DUP)
                self.b.emit(op.STLOC, tmp)
                self.b.emit(op.STFLD, fi.as_ref())
                self.b.emit(op.LDLOC, tmp)
                self.release(ttype, tmp)
            else:
                self.b.emit(op.STFLD, fi.as_ref())
            return
        if isinstance(target, ast.Member) and target.res[0] == "field":
            fi = target.res[1]
            self.emit_expr(target.target)
            self.emit_expr(e.value)
            self._maybe_struct_copy(e.value, ttype)
            if need_value:
                tmp = self.temp(ttype)
                self.b.emit(op.DUP)
                self.b.emit(op.STLOC, tmp)
                self.b.emit(op.STFLD, fi.as_ref())
                self.b.emit(op.LDLOC, tmp)
                self.release(ttype, tmp)
            else:
                self.b.emit(op.STFLD, fi.as_ref())
            return
        if isinstance(target, ast.Index):
            self.emit_expr(target.target)
            for idx in target.indices:
                self.emit_expr(idx)
            self.emit_expr(e.value)
            self._maybe_struct_copy(e.value, ttype)
            if need_value:
                tmp = self.temp(ttype)
                self.b.emit(op.DUP)
                self.b.emit(op.STLOC, tmp)
                self._emit_stelem(target)
                self.b.emit(op.LDLOC, tmp)
                self.release(ttype, tmp)
            else:
                self._emit_stelem(target)
            return
        raise self.error("invalid assignment target", e)

    def _emit_stelem(self, target: ast.Index) -> None:
        if target.rank == 1:
            self.b.emit(op.STELEM, target.elem_ctype)
        else:
            self.b.emit(op.STELEM_MD, (target.elem_ctype, target.rank))

    def _emit_storage_conv(self, from_type: CType, to_type: CType) -> None:
        """Convert the compound-assignment result back to the target's
        storage type when it was promoted (C# 14.14.2)."""
        if cts.stack_type(from_type) is not cts.stack_type(to_type) or to_type in (
            cts.INT8, cts.UINT8, cts.INT16, cts.UINT16, cts.CHAR,
        ):
            if to_type is not cts.BOOL:
                self.b.emit(_conv_opcode(to_type))

    def emit_compound_assign(self, e: ast.Assign, need_value: bool) -> None:
        target = e.target
        ttype = e.ctype
        prom = getattr(e, "prom", None) or cts.stack_type(ttype)
        concat = getattr(e, "concat_ref", None)

        def emit_operation() -> None:
            # current value is on the stack; promote, apply op with value
            if concat is None and prom is not None and cts.stack_type(ttype) is not prom:
                self.b.emit(_conv_opcode(prom))
            self.emit_expr(e.value)
            if concat is not None:
                self.b.emit(op.CALL, concat)
            else:
                self.b.emit(self._BINOP[e.op])
                self._emit_storage_conv(prom, ttype)

        if isinstance(target, ast.Name) and target.res[0] in ("local", "arg"):
            if target.res[0] == "local":
                slot = self.slot(target.res[1])
                self.b.emit(op.LDLOC, slot)
                emit_operation()
                if need_value:
                    self.b.emit(op.DUP)
                self.b.emit(op.STLOC, slot)
            else:
                index = target.res[1].arg_index
                self.b.emit(op.LDARG, index)
                emit_operation()
                if need_value:
                    self.b.emit(op.DUP)
                self.b.emit(op.STARG, index)
            return
        if (isinstance(target, (ast.Name, ast.Member))) and target.res[0] == "sfield":
            fi: FieldInfo = target.res[1]
            self.b.emit(op.LDSFLD, fi.as_ref())
            emit_operation()
            if need_value:
                self.b.emit(op.DUP)
            self.b.emit(op.STSFLD, fi.as_ref())
            return
        if isinstance(target, ast.Name) and target.res[0] == "field":
            fi = target.res[1]
            self.b.emit(op.LDARG, 0)
            self.b.emit(op.DUP)
            self.b.emit(op.LDFLD, fi.as_ref())
            emit_operation()
            if need_value:
                tmp = self.temp(ttype)
                self.b.emit(op.DUP)
                self.b.emit(op.STLOC, tmp)
                self.b.emit(op.STFLD, fi.as_ref())
                self.b.emit(op.LDLOC, tmp)
                self.release(ttype, tmp)
            else:
                self.b.emit(op.STFLD, fi.as_ref())
            return
        if isinstance(target, ast.Member) and target.res[0] == "field":
            fi = target.res[1]
            self.emit_expr(target.target)
            self.b.emit(op.DUP)
            self.b.emit(op.LDFLD, fi.as_ref())
            emit_operation()
            if need_value:
                tmp = self.temp(ttype)
                self.b.emit(op.DUP)
                self.b.emit(op.STLOC, tmp)
                self.b.emit(op.STFLD, fi.as_ref())
                self.b.emit(op.LDLOC, tmp)
                self.release(ttype, tmp)
            else:
                self.b.emit(op.STFLD, fi.as_ref())
            return
        if isinstance(target, ast.Index):
            # stage array + indices in temps (the csc pattern without ldelema)
            arr_t = target.target.ctype
            arr_tmp = self.temp(arr_t)
            self.emit_expr(target.target)
            self.b.emit(op.STLOC, arr_tmp)
            idx_tmps: List[int] = []
            for idx in target.indices:
                t = self.temp(cts.INT32)
                self.emit_expr(idx)
                self.b.emit(op.STLOC, t)
                idx_tmps.append(t)

            def load_element_path() -> None:
                self.b.emit(op.LDLOC, arr_tmp)
                for t in idx_tmps:
                    self.b.emit(op.LDLOC, t)

            load_element_path()
            if target.rank == 1:
                self.b.emit(op.LDELEM, target.elem_ctype)
            else:
                self.b.emit(op.LDELEM_MD, (target.elem_ctype, target.rank))
            emit_operation()
            res_tmp = self.temp(ttype)
            self.b.emit(op.STLOC, res_tmp)
            load_element_path()
            self.b.emit(op.LDLOC, res_tmp)
            self._emit_stelem(target)
            if need_value:
                self.b.emit(op.LDLOC, res_tmp)
            self.release(ttype, res_tmp)
            self.release(arr_t, arr_tmp)
            for t in idx_tmps:
                self.release(cts.INT32, t)
            return
        raise self.error("invalid compound assignment target", e)

    def emit_incdec(self, e: ast.IncDec, need_value: bool) -> None:
        """++/-- lowered to load/add-1/store, with the value-positioning
        dance for postfix when the result is consumed."""
        ttype = e.ctype
        st = cts.stack_type(ttype)
        one_opcode, one = {
            cts.INT32: (op.LDC_I4, 1),
            cts.INT64: (op.LDC_I8, 1),
            cts.FLOAT32: (op.LDC_R4, 1.0),
            cts.FLOAT64: (op.LDC_R8, 1.0),
        }[st]
        add_or_sub = op.ADD if e.op == "++" else op.SUB
        target = e.target

        def emit_delta_small_conv() -> None:
            if ttype in (cts.INT8, cts.UINT8, cts.INT16, cts.UINT16, cts.CHAR):
                self.b.emit(_conv_opcode(ttype))

        if isinstance(target, ast.Name) and target.res[0] in ("local", "arg"):
            is_local = target.res[0] == "local"
            slot = self.slot(target.res[1]) if is_local else target.res[1].arg_index
            load = (op.LDLOC, slot) if is_local else (op.LDARG, slot)
            store = (op.STLOC, slot) if is_local else (op.STARG, slot)
            self.b.emit(*load)
            if need_value and not e.prefix:
                self.b.emit(op.DUP)
            self.b.emit(one_opcode, one)
            self.b.emit(add_or_sub)
            emit_delta_small_conv()
            if need_value and e.prefix:
                self.b.emit(op.DUP)
            self.b.emit(*store)
            return
        # fields/elements: reuse the compound-assignment machinery
        synthetic = ast.Assign(line=e.line, target=target, op="+" if e.op == "++" else "-",
                               value=ast.IntLit(line=e.line, value=1))
        synthetic.value.ctype = cts.INT32
        synthetic.value.coerce_to = (
            None if st is cts.INT32 else ("conv", st)
        )
        synthetic.ctype = ttype
        synthetic.prom = st
        if need_value and not e.prefix:
            # postfix value semantics on a field/element target: evaluate the
            # old value into a temp first via a plain load, then increment
            old_tmp = self.temp(ttype)
            self.emit_expr(target)
            self.b.emit(op.STLOC, old_tmp)
            self.emit_compound_assign(synthetic, need_value=False)
            self.b.emit(op.LDLOC, old_tmp)
            self.release(ttype, old_tmp)
        else:
            self.emit_compound_assign(synthetic, need_value=need_value)


def _has_try(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, (ast.Try, ast.Lock)):
        return True
    if isinstance(stmt, ast.Block):
        return any(_has_try(s) for s in stmt.statements)
    if isinstance(stmt, ast.If):
        return _has_try(stmt.then) or (stmt.other is not None and _has_try(stmt.other))
    if isinstance(stmt, (ast.While, ast.DoWhile)):
        return _has_try(stmt.body)
    if isinstance(stmt, ast.For):
        return _has_try(stmt.body)
    return False


def _ends_dead(b: MethodBuilder) -> bool:
    """True when the current position is unreachable: the last emitted
    instruction unconditionally transfers control AND no label has been
    marked here (a marked label means a branch will land at this spot)."""
    instrs = b._instructions
    if not instrs:
        return False
    if len(instrs) in b._marked_positions:
        return False
    return instrs[-1].opcode in (op.RET, op.THROW, op.RETHROW, op.BR, op.LEAVE, op.ENDFINALLY)


class CodeGen:
    """Generates a full :class:`~repro.cil.metadata.Assembly` from a checked
    program."""

    def __init__(self, checker: Checker, assembly_name: str) -> None:
        self.checker = checker
        self.assembly = Assembly(assembly_name)
        self._method_defs: Dict[Tuple[str, str, Tuple[str, ...]], MethodDef] = {}

    def method_ref(self, mi: MethodInfo) -> MethodRef:
        return MethodRef(
            class_name=mi.owner.name,
            name=mi.name,
            param_types=tuple(mi.param_types),
            return_type=mi.return_type,
            is_static=mi.is_static,
        )

    def generate(self) -> Assembly:
        # declare all classes/members first so refs resolve
        for decl in self.checker.program.classes:
            info = self.checker.classes[decl.name]
            cdef = ClassDef(
                name=decl.name,
                base_name=decl.base_name,
                is_value_type=decl.is_struct,
            )
            for fname, fi in info.fields.items():
                cdef.add_field(FieldDef(fname, fi.ctype, fi.is_static))
            self.assembly.add_class(cdef)
        for decl in self.checker.program.classes:
            info = self.checker.classes[decl.name]
            cdef = self.assembly.get_class(decl.name)
            for mdecl in decl.methods:
                bucket = info.methods.get(mdecl.name, [])
                mi = next(m for m in bucket if m.decl is mdecl)
                mdef = MethodDef(
                    name=mi.name,
                    param_types=list(mi.param_types),
                    param_names=list(mi.param_names),
                    return_type=mi.return_type,
                    is_static=mi.is_static,
                    is_virtual=mi.is_virtual,
                    is_override=mi.is_override,
                    is_ctor=mi.is_ctor,
                )
                cdef.add_method(mdef)
                MethodGen(self, info, mi, mdef).generate()
        return self.assembly
