"""Recursive-descent parser for Kernel-C#.

The grammar is the C# 1.0 subset the benchmark suite needs (see DESIGN.md
section 3.2): classes/structs with fields, constructors, static/instance/
virtual methods; the full statement set including try/catch/finally and
``lock``; and the complete C# expression precedence ladder from assignment
down to primary, including casts, ``new`` array/object creation and
pre/post increment.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from . import ast_nodes as ast
from .lexer import tokenize
from .tokens import (
    CHAR_LIT,
    DOUBLE_LIT,
    EOF,
    FLOAT_LIT,
    IDENT,
    INT_LIT,
    KEYWORD,
    LONG_LIT,
    PUNCT,
    STRING_LIT,
    Token,
)

#: keywords that can begin a type expression
TYPE_KEYWORDS = frozenset(
    "void int long short sbyte byte ushort char float double bool object string".split()
)

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])


class Parser:
    def __init__(self, source: str, filename: str = "<source>") -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.filename = filename

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def error(self, message: str, tok: Optional[Token] = None) -> ParseError:
        tok = tok or self.peek()
        return ParseError(message, tok.line, tok.column)

    def at_punct(self, text: str, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok.kind == PUNCT and tok.value == text

    def at_keyword(self, word: str, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok.kind == KEYWORD and tok.value == word

    def eat_punct(self, text: str) -> Token:
        if not self.at_punct(text):
            raise self.error(f"expected {text!r}, found {self.peek().text!r}")
        return self.next()

    def eat_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise self.error(f"expected {word!r}, found {self.peek().text!r}")
        return self.next()

    def eat_ident(self) -> str:
        tok = self.peek()
        if tok.kind != IDENT:
            raise self.error(f"expected identifier, found {tok.text!r}")
        self.next()
        return str(tok.value)

    def accept_punct(self, text: str) -> bool:
        if self.at_punct(text):
            self.next()
            return True
        return False

    # -- program structure ----------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.peek().kind == EOF:
            if self.at_keyword("using") or self.at_keyword("namespace"):
                # tolerated and ignored: benchmarks ported from C# keep them
                self._skip_using_or_namespace(program)
                continue
            program.classes.append(self.parse_class())
        return program

    def _skip_using_or_namespace(self, program: ast.Program) -> None:
        if self.at_keyword("using"):
            self.next()
            while not self.at_punct(";"):
                if self.peek().kind == EOF:
                    raise self.error("unterminated using directive")
                self.next()
            self.next()
        else:  # namespace X { classes }
            self.next()
            self.eat_ident()
            while self.at_punct("."):
                self.next()
                self.eat_ident()
            self.eat_punct("{")
            while not self.at_punct("}"):
                program.classes.append(self.parse_class())
            self.eat_punct("}")

    def parse_class(self) -> ast.ClassDecl:
        # access modifiers tolerated and ignored
        while self.at_keyword("public") or self.at_keyword("private"):
            self.next()
        is_struct = self.at_keyword("struct")
        if not is_struct and not self.at_keyword("class"):
            raise self.error(f"expected class or struct, found {self.peek().text!r}")
        tok = self.next()
        decl = ast.ClassDecl(line=tok.line, is_struct=is_struct)
        decl.name = self.eat_ident()
        if self.accept_punct(":"):
            if is_struct:
                raise self.error("structs cannot have a base type")
            decl.base_name = self.eat_ident()
        self.eat_punct("{")
        while not self.at_punct("}"):
            self.parse_member(decl)
        self.eat_punct("}")
        return decl

    def parse_member(self, decl: ast.ClassDecl) -> None:
        start = self.peek()
        is_static = False
        is_virtual = False
        is_override = False
        while True:
            if self.at_keyword("public") or self.at_keyword("private"):
                self.next()
            elif self.at_keyword("static"):
                self.next()
                is_static = True
            elif self.at_keyword("virtual"):
                self.next()
                is_virtual = True
            elif self.at_keyword("override"):
                self.next()
                is_override = True
            elif self.at_keyword("const"):
                self.next()
                is_static = True  # const fields behave as readonly statics
            else:
                break

        # constructor: Name (
        if (
            self.peek().kind == IDENT
            and self.peek().value == decl.name
            and self.at_punct("(", 1)
        ):
            method = ast.MethodDecl(line=start.line, is_ctor=True, name=".ctor")
            method.is_static = False
            self.next()  # class name
            method.params = self.parse_params()
            if self.accept_punct(":"):
                self.eat_keyword("base")
                method.base_args = self.parse_args()
            method.body = self.parse_block()
            decl.methods.append(method)
            return

        type_expr = self.parse_type()
        name_tok = self.peek()
        name = self.eat_ident()
        if self.at_punct("("):
            method = ast.MethodDecl(
                line=start.line,
                name=name,
                return_type=type_expr,
                is_static=is_static,
                is_virtual=is_virtual,
                is_override=is_override,
            )
            method.params = self.parse_params()
            method.body = self.parse_block()
            decl.methods.append(method)
        else:
            if is_virtual or is_override:
                raise self.error("fields cannot be virtual", name_tok)
            while True:
                f = ast.FieldDecl(
                    line=name_tok.line,
                    type_expr=type_expr,
                    name=name,
                    is_static=is_static,
                )
                if self.accept_punct("="):
                    f.init = self.parse_expression()
                decl.fields.append(f)
                if self.accept_punct(","):
                    name_tok = self.peek()
                    name = self.eat_ident()
                    continue
                break
            self.eat_punct(";")

    def parse_params(self) -> List[ast.Param]:
        self.eat_punct("(")
        params: List[ast.Param] = []
        if not self.at_punct(")"):
            while True:
                tok = self.peek()
                type_expr = self.parse_type()
                name = self.eat_ident()
                params.append(ast.Param(type_expr=type_expr, name=name, line=tok.line))
                if not self.accept_punct(","):
                    break
        self.eat_punct(")")
        return params

    # -- types ------------------------------------------------------------------

    def looks_like_type(self, offset: int = 0) -> bool:
        tok = self.peek(offset)
        if tok.kind == KEYWORD and tok.value in TYPE_KEYWORDS:
            return True
        return tok.kind == IDENT

    def parse_type(self) -> ast.TypeExpr:
        tok = self.peek()
        if tok.kind == KEYWORD and tok.value in TYPE_KEYWORDS:
            self.next()
            name = str(tok.value)
        elif tok.kind == IDENT:
            self.next()
            name = str(tok.value)
        else:
            raise self.error(f"expected type, found {tok.text!r}")
        t = ast.TypeExpr(name=name, line=tok.line)
        while self.at_punct("["):
            # distinguish rank brackets from indexing at call sites; here,
            # consume only bracket groups containing just commas
            rank = 1
            offset = 1
            while self.at_punct(",", offset):
                rank += 1
                offset += 1
            if not self.at_punct("]", offset):
                break
            self.next()  # [
            for _ in range(rank - 1):
                self.next()  # ,
            self.next()  # ]
            t.ranks.append(rank)
        return t

    # -- statements ----------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        tok = self.eat_punct("{")
        block = ast.Block(line=tok.line)
        while not self.at_punct("}"):
            if self.peek().kind == EOF:
                raise self.error("unterminated block")
            block.statements.append(self.parse_statement())
        self.eat_punct("}")
        return block

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind == PUNCT and tok.value == "{":
            return self.parse_block()
        if tok.kind == PUNCT and tok.value == ";":
            self.next()
            return ast.Block(line=tok.line)
        if tok.kind == KEYWORD:
            word = tok.value
            if word == "if":
                return self.parse_if()
            if word == "while":
                return self.parse_while()
            if word == "do":
                return self.parse_do_while()
            if word == "for":
                return self.parse_for()
            if word == "return":
                self.next()
                stmt = ast.Return(line=tok.line)
                if not self.at_punct(";"):
                    stmt.value = self.parse_expression()
                self.eat_punct(";")
                return stmt
            if word == "break":
                self.next()
                self.eat_punct(";")
                return ast.Break(line=tok.line)
            if word == "continue":
                self.next()
                self.eat_punct(";")
                return ast.Continue(line=tok.line)
            if word == "throw":
                self.next()
                stmt = ast.Throw(line=tok.line)
                if not self.at_punct(";"):
                    stmt.value = self.parse_expression()
                self.eat_punct(";")
                return stmt
            if word == "try":
                return self.parse_try()
            if word == "lock":
                self.next()
                self.eat_punct("(")
                target = self.parse_expression()
                self.eat_punct(")")
                body = self.parse_statement()
                return ast.Lock(line=tok.line, target=target, body=body)
            if word in TYPE_KEYWORDS:
                return self.parse_var_decl()
        # IDENT could start a declaration (`Foo x = ...`, `int[] a`, `Foo[] a`)
        if self._looks_like_declaration():
            return self.parse_var_decl()
        expr = self.parse_expression()
        self.eat_punct(";")
        return ast.ExprStmt(line=tok.line, expr=expr)

    def _looks_like_declaration(self) -> bool:
        """IDENT (rank-brackets)* IDENT (';' | '=' | ',') => declaration."""
        if self.peek().kind != IDENT:
            return False
        offset = 1
        # skip rank bracket groups: '[' ','* ']'
        while self.at_punct("[", offset):
            inner = offset + 1
            while self.at_punct(",", inner):
                inner += 1
            if not self.at_punct("]", inner):
                return False
            offset = inner + 1
        if self.peek(offset).kind != IDENT:
            return False
        after = self.peek(offset + 1)
        return after.kind == PUNCT and after.value in (";", "=", ",")

    def parse_var_decl(self) -> ast.VarDecl:
        tok = self.peek()
        type_expr = self.parse_type()
        decl = ast.VarDecl(line=tok.line, type_expr=type_expr)
        while True:
            decl.names.append(self.eat_ident())
            if self.accept_punct("="):
                decl.inits.append(self.parse_expression())
            else:
                decl.inits.append(None)
            if not self.accept_punct(","):
                break
        self.eat_punct(";")
        return decl

    def parse_if(self) -> ast.If:
        tok = self.eat_keyword("if")
        self.eat_punct("(")
        cond = self.parse_expression()
        self.eat_punct(")")
        then = self.parse_statement()
        other = None
        if self.at_keyword("else"):
            self.next()
            other = self.parse_statement()
        return ast.If(line=tok.line, cond=cond, then=then, other=other)

    def parse_while(self) -> ast.While:
        tok = self.eat_keyword("while")
        self.eat_punct("(")
        cond = self.parse_expression()
        self.eat_punct(")")
        body = self.parse_statement()
        return ast.While(line=tok.line, cond=cond, body=body)

    def parse_do_while(self) -> ast.DoWhile:
        tok = self.eat_keyword("do")
        body = self.parse_statement()
        self.eat_keyword("while")
        self.eat_punct("(")
        cond = self.parse_expression()
        self.eat_punct(")")
        self.eat_punct(";")
        return ast.DoWhile(line=tok.line, body=body, cond=cond)

    def parse_for(self) -> ast.For:
        tok = self.eat_keyword("for")
        self.eat_punct("(")
        stmt = ast.For(line=tok.line)
        if not self.at_punct(";"):
            if (self.peek().kind == KEYWORD and self.peek().value in TYPE_KEYWORDS) or self._looks_like_declaration():
                # declaration consumes its own ';'
                stmt.init = self._parse_for_init_decl()
            else:
                stmt.init = ast.ExprStmt(line=self.peek().line, expr=self.parse_expression())
                self.eat_punct(";")
        else:
            self.next()
        if not self.at_punct(";"):
            stmt.cond = self.parse_expression()
        self.eat_punct(";")
        if not self.at_punct(")"):
            while True:
                stmt.update.append(self.parse_expression())
                if not self.accept_punct(","):
                    break
        self.eat_punct(")")
        stmt.body = self.parse_statement()
        return stmt

    def _parse_for_init_decl(self) -> ast.VarDecl:
        tok = self.peek()
        type_expr = self.parse_type()
        decl = ast.VarDecl(line=tok.line, type_expr=type_expr)
        while True:
            decl.names.append(self.eat_ident())
            if self.accept_punct("="):
                decl.inits.append(self.parse_expression())
            else:
                decl.inits.append(None)
            if not self.accept_punct(","):
                break
        self.eat_punct(";")
        return decl

    def parse_try(self) -> ast.Try:
        tok = self.eat_keyword("try")
        stmt = ast.Try(line=tok.line)
        stmt.body = self.parse_block()
        while self.at_keyword("catch"):
            ctok = self.next()
            clause = ast.CatchClause(line=ctok.line)
            if self.accept_punct("("):
                clause.type_name = self.eat_ident()
                if self.peek().kind == IDENT:
                    clause.var_name = self.eat_ident()
                self.eat_punct(")")
            else:
                clause.type_name = "Exception"
            clause.body = self.parse_block()
            stmt.catches.append(clause)
        if self.at_keyword("finally"):
            self.next()
            stmt.finally_body = self.parse_block()
        if not stmt.catches and stmt.finally_body is None:
            raise self.error("try requires catch or finally", tok)
        return stmt

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        tok = self.peek()
        if tok.kind == PUNCT and tok.value in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            op = "" if tok.value == "=" else str(tok.value)[:-1]
            return ast.Assign(line=tok.line, target=left, op=op, value=value)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_logical_or()
        if self.at_punct("?"):
            tok = self.next()
            then = self.parse_expression()
            self.eat_punct(":")
            other = self.parse_conditional()
            return ast.Conditional(line=tok.line, cond=cond, then=then, other=other)
        return cond

    def parse_logical_or(self) -> ast.Expr:
        left = self.parse_logical_and()
        while self.at_punct("||"):
            tok = self.next()
            right = self.parse_logical_and()
            left = ast.Logical(line=tok.line, op="||", left=left, right=right)
        return left

    def parse_logical_and(self) -> ast.Expr:
        left = self.parse_bit_or()
        while self.at_punct("&&"):
            tok = self.next()
            right = self.parse_bit_or()
            left = ast.Logical(line=tok.line, op="&&", left=left, right=right)
        return left

    def _binary_level(self, ops, sub):
        left = sub()
        while self.peek().kind == PUNCT and self.peek().value in ops:
            tok = self.next()
            right = sub()
            left = ast.Binary(line=tok.line, op=str(tok.value), left=left, right=right)
        return left

    def parse_bit_or(self) -> ast.Expr:
        return self._binary_level(("|",), self.parse_bit_xor)

    def parse_bit_xor(self) -> ast.Expr:
        return self._binary_level(("^",), self.parse_bit_and)

    def parse_bit_and(self) -> ast.Expr:
        return self._binary_level(("&",), self.parse_equality)

    def parse_equality(self) -> ast.Expr:
        return self._binary_level(("==", "!="), self.parse_relational)

    def parse_relational(self) -> ast.Expr:
        return self._binary_level(("<", ">", "<=", ">="), self.parse_shift)

    def parse_shift(self) -> ast.Expr:
        return self._binary_level(("<<", ">>"), self.parse_additive)

    def parse_additive(self) -> ast.Expr:
        return self._binary_level(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> ast.Expr:
        return self._binary_level(("*", "/", "%"), self.parse_unary)

    def _looks_like_cast(self) -> bool:
        """``(type) unary-expr`` — types are keywords or ``Ident[ranks]``
        followed by something that can start a unary expression."""
        if not self.at_punct("("):
            return False
        tok1 = self.peek(1)
        if tok1.kind == KEYWORD and tok1.value in TYPE_KEYWORDS:
            return True
        if tok1.kind != IDENT:
            return False
        # (Ident) X where X starts an operand => cast to a class type
        offset = 2
        while self.at_punct("[", offset):
            inner = offset + 1
            while self.at_punct(",", inner):
                inner += 1
            if not self.at_punct("]", inner):
                return False
            offset = inner + 1
        if not self.at_punct(")", offset):
            return False
        after = self.peek(offset + 1)
        if after.kind in (IDENT, INT_LIT, LONG_LIT, FLOAT_LIT, DOUBLE_LIT, STRING_LIT, CHAR_LIT):
            return True
        if after.kind == KEYWORD and after.value in ("new", "this", "true", "false", "null", "base"):
            return True
        if after.kind == PUNCT and after.value == "(":
            return True
        return False

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == PUNCT:
            if tok.value in ("-", "!", "~"):
                self.next()
                operand = self.parse_unary()
                return ast.Unary(line=tok.line, op=str(tok.value), operand=operand)
            if tok.value == "+":
                self.next()
                return self.parse_unary()
            if tok.value in ("++", "--"):
                self.next()
                target = self.parse_unary()
                return ast.IncDec(line=tok.line, target=target, op=str(tok.value), prefix=True)
            if self._looks_like_cast():
                self.next()  # (
                type_expr = self.parse_type()
                self.eat_punct(")")
                operand = self.parse_unary()
                return ast.Cast(line=tok.line, type_expr=type_expr, operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if self.at_punct("."):
                self.next()
                name = self.eat_ident()
                if self.at_punct("("):
                    args = self.parse_args()
                    call = ast.Call(
                        line=tok.line,
                        callee=ast.Member(line=tok.line, target=expr, name=name),
                        args=args,
                    )
                    if isinstance(expr, ast.Name) and expr.ident == "base":
                        call.is_base_call = True
                    expr = call
                else:
                    expr = ast.Member(line=tok.line, target=expr, name=name)
            elif self.at_punct("["):
                self.next()
                indices = [self.parse_expression()]
                while self.accept_punct(","):
                    indices.append(self.parse_expression())
                self.eat_punct("]")
                expr = ast.Index(line=tok.line, target=expr, indices=indices)
            elif self.at_punct("("):
                args = self.parse_args()
                expr = ast.Call(line=tok.line, callee=expr, args=args)
            elif self.at_punct("++") or self.at_punct("--"):
                self.next()
                expr = ast.IncDec(line=tok.line, target=expr, op=str(tok.value), prefix=False)
            else:
                return expr

    def parse_args(self) -> List[ast.Expr]:
        self.eat_punct("(")
        args: List[ast.Expr] = []
        if not self.at_punct(")"):
            while True:
                args.append(self.parse_expression())
                if not self.accept_punct(","):
                    break
        self.eat_punct(")")
        return args

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == INT_LIT:
            self.next()
            return ast.IntLit(line=tok.line, value=int(tok.value))
        if tok.kind == LONG_LIT:
            self.next()
            return ast.IntLit(line=tok.line, value=int(tok.value), is_long=True)
        if tok.kind == DOUBLE_LIT:
            self.next()
            return ast.FloatLit(line=tok.line, value=float(tok.value))
        if tok.kind == FLOAT_LIT:
            self.next()
            return ast.FloatLit(line=tok.line, value=float(tok.value), is_single=True)
        if tok.kind == STRING_LIT:
            self.next()
            return ast.StringLit(line=tok.line, value=str(tok.value))
        if tok.kind == CHAR_LIT:
            self.next()
            return ast.CharLit(line=tok.line, value=int(tok.value))
        if tok.kind == KEYWORD:
            if tok.value == "true":
                self.next()
                return ast.BoolLit(line=tok.line, value=True)
            if tok.value == "false":
                self.next()
                return ast.BoolLit(line=tok.line, value=False)
            if tok.value == "null":
                self.next()
                return ast.NullLit(line=tok.line)
            if tok.value == "this":
                self.next()
                return ast.ThisExpr(line=tok.line)
            if tok.value == "base":
                self.next()
                return ast.Name(line=tok.line, ident="base")
            if tok.value == "new":
                return self.parse_new()
            if tok.value in TYPE_KEYWORDS:
                # e.g. int.MaxValue / double.NaN
                self.next()
                return ast.Name(line=tok.line, ident=str(tok.value))
        if tok.kind == IDENT:
            self.next()
            return ast.Name(line=tok.line, ident=str(tok.value))
        if self.at_punct("("):
            self.next()
            expr = self.parse_expression()
            self.eat_punct(")")
            return expr
        raise self.error(f"unexpected token {tok.text!r}")

    def parse_new(self) -> ast.Expr:
        tok = self.eat_keyword("new")
        # type name (no rank suffix parsing here; handled explicitly)
        ttok = self.peek()
        if ttok.kind == KEYWORD and ttok.value in TYPE_KEYWORDS:
            self.next()
            name = str(ttok.value)
        elif ttok.kind == IDENT:
            self.next()
            name = str(ttok.value)
        else:
            raise self.error(f"expected type after new, found {ttok.text!r}")

        if self.at_punct("("):
            args = self.parse_args()
            return ast.NewObject(line=tok.line, type_name=name, args=args)

        if not self.at_punct("["):
            raise self.error("expected '(' or '[' after new T")
        self.next()
        dims = [self.parse_expression()]
        while self.accept_punct(","):
            dims.append(self.parse_expression())
        self.eat_punct("]")
        node = ast.NewArray(line=tok.line, dims=dims)
        node.element = ast.TypeExpr(name=name, line=tok.line)
        # jagged suffixes: new int[n][] or new int[n][][]
        while self.at_punct("["):
            rank = 1
            offset = 1
            while self.at_punct(",", offset):
                rank += 1
                offset += 1
            if not self.at_punct("]", offset):
                raise self.error("jagged allocation suffix must be empty brackets")
            self.next()
            for _ in range(rank - 1):
                self.next()
            self.next()
            node.extra_ranks.append(rank)
        return node


def parse(source: str, filename: str = "<source>") -> ast.Program:
    """Parse Kernel-C# source into a :class:`~repro.lang.ast_nodes.Program`."""
    return Parser(source, filename).parse_program()
