"""Minimal HTTP/1.1 framing for the experiment daemon.

The service speaks just enough HTTP for a JSON request/response API —
``urllib`` and ``curl`` both talk to it — without importing anything
beyond the standard library.  Bodies are UTF-8 JSON, responses carry
``Content-Length`` so clients never block on EOF.  The default posture
is one request per connection (``Connection: close``); a client that
sends ``Connection: keep-alive`` explicitly (the pooled
:class:`~repro.service.client.ServiceClient` does) gets the connection
held open for further requests — opt-in, so naive read-until-EOF
clients never hang.  Protocol errors always close.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, urlsplit


class HttpError(Exception):
    """A request the daemon answers with an error status (not a crash).

    ``headers`` ride on the response verbatim (the admission layer sets
    ``Retry-After`` this way) and ``fields`` are merged into the JSON
    error body next to ``"error"`` — a rejection is structured data a
    client can act on, not just a string.
    """

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None,
                 **fields: object):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        self.fields = fields

    def payload(self) -> Dict[str, object]:
        body: Dict[str, object] = {"error": self.message}
        body.update(self.fields)
        return body


#: the subset of status lines the daemon emits
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

MAX_BODY_BYTES = 8 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"bad JSON body: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        return payload

    def wants_keep_alive(self) -> bool:
        """True when the client explicitly asked to reuse the connection."""
        return self.headers.get("connection", "").strip().lower() == "keep-alive"


async def read_request(reader) -> Optional[Request]:
    """Parse one request off an asyncio stream; None on a clean EOF (or a
    peer that vanished mid-request).  An oversized header block is a
    *protocol* error the daemon answers with 400 rather than a hangup —
    asyncio's stream limit surfaces it as LimitOverrunError."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "header block too large")
    except asyncio.IncompleteReadError as exc:
        if exc.partial and len(exc.partial) >= MAX_HEADER_BYTES:
            raise HttpError(400, "header block too large")
        return None
    except Exception:  # connection reset and friends
        return None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "header block too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise HttpError(400, "malformed Content-Length")
    if length < 0:
        raise HttpError(400, "malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise HttpError(400, "body too large")
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        return None  # peer hung up mid-body
    return Request(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def format_response(
    status: int,
    payload: object,
    content_type: Optional[str] = None,
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = False,
) -> bytes:
    """One Content-Length framed response (``Connection: close`` unless
    ``keep_alive`` — the framing stays Content-Length either way, so a
    reused connection knows exactly where each response ends).

    ``str``/``bytes`` payloads go out verbatim (``text/plain`` unless a
    ``content_type`` overrides — the ``/metrics`` exposition path);
    anything else is JSON.  ``headers`` adds extra response headers — the
    daemon uses it to echo ``X-Repro-Trace`` on every response, including
    4xx/5xx.
    """
    if isinstance(payload, bytes):
        body = payload
        ctype = content_type or "text/plain; charset=utf-8"
    elif isinstance(payload, str):
        body = payload.encode("utf-8")
        ctype = content_type or "text/plain; charset=utf-8"
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        ctype = content_type or "application/json"
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {ctype}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: {connection}\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body
