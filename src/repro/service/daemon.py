"""The experiment daemon: benchmark-as-a-service over the result store.

An :class:`ExperimentService` owns one SQLite experiment store and a job
queue.  Submitted jobs are (benchmarks x profiles) matrices; each job
runs through :func:`repro.metrics.baseline.collect` with the store
attached, so cells already on record are **served** (zero compiles, zero
guest cycles — the memo key is content-addressed on compiler version,
profile, benchmark, canonical overrides and dispatch engine) and only
novel cells execute, through the same resilient pool every CLI uses.
The returned artifact is byte-identical to a direct serial run: that is
the daemon-vs-direct identity invariant the test suite pins.

Concurrency model (``workers=`` / ``repro-serve --workers N|auto``):

* N drain tasks pull from one queue into a thread-pool executor, and
  **each job executes in its own forked subprocess** — per-job isolation
  of every piece of process-global state that concurrent in-process
  collections would corrupt (the ``COMPILE_STATS`` counter, the
  ``collect.last_*`` function attributes, compile-cache writes).  The
  worker measures its own compile delta and reports it back over a pipe,
  so warm-path zero-compile assertions stay exact under overlap.
* Identical in-flight submissions **coalesce**: a submission whose
  content-addressed cell-key set (plus git SHA) matches a queued or
  running job attaches to it as a follower instead of re-executing —
  same artifact, zero compiles, zero guest cycles, ``coalesced_with`` in
  the job view and a ``service.coalesced_total`` counter.  Fault-plan
  submissions are rejected before coalescing can see them.
* Read endpoints (``/v1/trends``, ``/v1/stats``) draw from a
  :class:`~repro.store.StoreReadPool` of read-only connections against
  the WAL-mode store, so high-QPS reads never contend with the
  appending job workers.
* Connections are ``Connection: close`` by default; a client that sends
  ``Connection: keep-alive`` (the pooled ``ServiceClient``) gets the
  connection reused across requests.

All daemon bookkeeping — job dicts, the queue mirror, metric counters —
mutates only on the event-loop thread; executor threads do nothing but
shepherd the worker subprocess and hand its payload back, so no job
state needs locking.

Every request is traced (:mod:`repro.trace`): the daemon parses
``X-Repro-Trace`` off the wire (minting a fresh trace id when absent),
roots an ``http.request`` span per request, and threads the context
through submit -> queue wait -> executor -> ``baseline.collect`` ->
pool fan-out -> store.  The worker subprocess records its spans into a
local tracer and ships them back with the result; the daemon ingests
them into its ring buffer and JSONL sink, so one submission is still one
span tree across the whole stack.  The span buffer is served on ``GET
/v1/traces/<id>``, and ``GET /metrics`` exposes the registry in
Prometheus text exposition format.  All of this is wall-clock
operational telemetry; none of it touches measured artifacts.

Everything is standard library: asyncio sockets, hand-rolled HTTP/1.1
framing (:mod:`repro.service.http`), ``multiprocessing`` pipes,
``sqlite3`` underneath.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set

from ..metrics.exposition import EXPOSITION_CONTENT_TYPE, render_exposition
from ..metrics.registry import MetricsRegistry
from ..trace import (
    NULL_CONTEXT,
    TRACE_HEADER,
    JsonlSink,
    Span,
    TraceContext,
    Tracer,
    format_trace_header,
    new_span_id,
    new_trace_id,
    parse_trace_header,
)
from .http import HttpError, Request, format_response, read_request

#: job lifecycle: queued -> running -> done | failed
JOB_STATES = ("queued", "running", "done", "failed")

#: microsecond-scale latency buckets for the service histograms
#: (100us .. ~100s; jobs that execute cells land in the upper decades,
#: memo-served ones in the lower)
LATENCY_BUCKETS_US = (
    100, 1_000, 5_000, 25_000, 100_000, 500_000,
    2_000_000, 10_000_000, 30_000_000, 100_000_000,
)


class _RemoteJobError(Exception):
    """A job failure reported by the worker subprocess — the message is
    already formatted (``TypeName: detail``), so the daemon surfaces it
    verbatim instead of nesting exception names."""


def _collect_in_worker(config: dict) -> dict:
    """The actual collection, running inside the job subprocess.

    Everything process-global is private here: ``COMPILE_STATS``, the
    ``collect.last_*`` attributes, the store connection.  Spans land in a
    local tracer rooted at the job's ``job.execute`` span and travel back
    as dicts; the compile delta comes from ``collect.last_store`` —
    measured around the execution *in this process*, which is what makes
    per-job compile accounting exact under daemon-level overlap.
    """
    from ..metrics import baseline
    from ..parallel import CompileCache
    from ..store import ExperimentStore

    request = config["request"]
    profiles = baseline.resolve_profiles(request["profiles"])
    suite = baseline.resolve_suite(request["benchmarks"], request["scale"])
    tracer = Tracer()
    ctx = TraceContext(
        tracer, config["trace_id"] or new_trace_id(), config["parent_span"]
    )
    cache = (
        CompileCache(config["cache_dir"])
        if config["use_compile_cache"]
        else None
    )
    with ExperimentStore(config["store_path"]) as store:
        artifact = baseline.collect(
            profiles=profiles,
            suite=suite,
            scale=request["scale"],
            git_sha=request["git_sha"],
            jobs=config["jobs"],
            cache=cache,
            dispatch=request["dispatch"],
            store=store,
            trace=ctx,
        )
    stats = dict(baseline.collect.last_store)
    return {
        "artifact": artifact,
        "stats": stats,
        "spans": [span.to_dict() for span in tracer.snapshot()],
    }


def _job_worker(conn, config: dict) -> None:
    """Subprocess entry point: run the collection, ship one message back."""
    try:
        message = ("ok", _collect_in_worker(config))
    except BaseException as exc:  # noqa: BLE001 — job isolation boundary
        message = ("error", f"{type(exc).__name__}: {exc}")
    try:
        conn.send(message)
    finally:
        conn.close()


def _run_job_subprocess(config: dict) -> dict:
    """Run one job in a fresh subprocess; return its result payload.

    Runs on an executor thread.  Fork context where available (same
    choice as the cell pool); the pipe carries exactly one message.  A
    worker that dies without reporting (OOM-kill, hard crash) surfaces
    as a job failure, not a daemon crash.
    """
    from ..parallel.pool import _pool_context

    ctx = _pool_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_job_worker, args=(child_conn, config))
    proc.start()
    child_conn.close()
    try:
        try:
            kind, payload = parent_conn.recv()
        except EOFError:
            proc.join()
            raise _RemoteJobError(
                f"job worker (pid {proc.pid}) died without reporting "
                f"a result (exit code {proc.exitcode})"
            )
    finally:
        parent_conn.close()
        proc.join()
    if kind != "ok":
        raise _RemoteJobError(payload)
    return payload


def _coalesce_key(suite, profiles, dispatch, git_sha) -> str:
    """The submission-identity digest: the sorted content-addressed cell
    keys (already covering compiler version, profile, benchmark, resolved
    params and dispatch engine) plus the git SHA stamp, which lives in
    the artifact but not in any cell key.  Two submissions with equal
    digests are guaranteed byte-identical artifacts — the precondition
    that makes coalescing a pure optimization."""
    from ..store import cell_key

    digest = hashlib.sha256()
    for key in sorted(
        cell_key(name, profile.name, overrides=params or None, dispatch=dispatch)
        for name, params in suite
        for profile in profiles
    ):
        digest.update(key.encode())
        digest.update(b"\x00")
    digest.update(f"git:{git_sha!r}".encode())
    return digest.hexdigest()


class ExperimentService:
    """One daemon instance: an HTTP front end over a store-backed queue."""

    def __init__(
        self,
        store_path: Optional[str] = None,
        *,
        jobs=None,
        workers=None,
        cache_dir: Optional[str] = None,
        use_compile_cache: bool = True,
        default_dispatch: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        trace_log: Optional[str] = None,
    ):
        from ..parallel import resolve_jobs
        from ..store import default_store_path

        self.store_path = store_path or default_store_path()
        self.jobs = jobs
        #: concurrent job executions (``--workers``): N drain tasks over
        #: one queue, each job in its own subprocess
        self.workers = resolve_jobs(workers)
        self.cache_dir = cache_dir
        self.use_compile_cache = use_compile_cache
        self.default_dispatch = default_dispatch
        self.registry = registry if registry is not None else MetricsRegistry()
        self._trace_sink = JsonlSink(trace_log) if trace_log else None
        self.tracer = Tracer(
            sinks=(self._trace_sink,) if self._trace_sink else ()
        )
        self._jobs: Dict[int, dict] = {}
        self._next_job = 1
        self._queue: asyncio.Queue = asyncio.Queue()
        #: mirror of the queue's job ids in dequeue order — the source of
        #: truth for ``queue_position`` (a job leaves it the moment a
        #: drain task picks it up, unlike a status scan over ``_jobs``)
        self._pending: List[int] = []
        #: coalesce digest -> primary job id, for every queued/running job
        self._inflight_keys: Dict[str, int] = {}
        #: daemon-owned compile accounting: the sum of per-job deltas the
        #: workers report — never a snapshot of any process-global
        self._compile_totals: Dict[str, int] = {"compile_source_calls": 0}
        self._server: Optional[asyncio.AbstractServer] = None
        self._drainers: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._read_pool = None
        self._connections: Set[object] = set()
        self._inflight = 0
        self.started_unix: Optional[float] = None
        self._started_monotonic: Optional[float] = None
        self.swept_tmp_files = 0
        self.journal_mode: Optional[str] = None
        # register the service gauges/histograms/counters up front so a
        # fresh daemon's /metrics already carries the full instrument set
        self.registry.gauge("service.queue_depth")
        self.registry.gauge("service.inflight")
        self.registry.counter("service.coalesced_total")
        self.registry.histogram("service.http_latency_us", LATENCY_BUCKETS_US)
        self.registry.histogram(
            "service.job_queue_wait_us", LATENCY_BUCKETS_US
        )
        self.registry.histogram("service.job_exec_us", LATENCY_BUCKETS_US)

    # ------------------------------------------------------------- lifecycle

    def _cache(self):
        if not self.use_compile_cache:
            return None
        from ..parallel import CompileCache

        return CompileCache(self.cache_dir)

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the listener (port 0 = ephemeral), run startup GC, apply
        store migrations, and start the drain tasks."""
        cache = self._cache()
        if cache is not None:
            # reap compile-cache temp files orphaned by previously killed
            # writers, so a crashed run never bloats the daemon's cache
            self.swept_tmp_files = cache.sweep()
        from ..store import ExperimentStore, StoreReadPool

        # create / migrate / switch to WAL up front, then warm the
        # read-only pool the query endpoints draw from
        store = ExperimentStore(self.store_path)
        self.journal_mode = store.journal_mode
        store.close()
        self._read_pool = StoreReadPool(
            self.store_path, size=max(2, self.workers)
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-job"
        )
        self._server = await asyncio.start_server(self._serve_one, host, port)
        self._drainers = [
            asyncio.ensure_future(self._drain_jobs())
            for _ in range(self.workers)
        ]
        self.started_unix = time.time()
        self._started_monotonic = time.monotonic()

    @property
    def address(self):
        """``(host, port)`` actually bound (resolves port 0)."""
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        for task in self._drainers:
            task.cancel()
        for task in self._drainers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._drainers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        # keep-alive clients may still hold connections open; close them
        # so stop() never blocks on an idle peer
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._read_pool is not None:
            self._read_pool.close()
            self._read_pool = None
        if self._trace_sink is not None:
            self._trace_sink.close()
            self._trace_sink = None

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("service not started")
        await self._server.serve_forever()

    # ------------------------------------------------------------- job queue

    def _refresh_gauges(self) -> None:
        self.registry.gauge("service.queue_depth").set(self._queue.qsize())
        self.registry.gauge("service.inflight").set(self._inflight)

    def _submit(self, request: dict, ctx=NULL_CONTEXT) -> dict:
        from ..metrics import baseline
        from ..vm.dispatch import DISPATCH_MODES

        if request.get("plan") or request.get("faults"):
            raise HttpError(
                409,
                "the service does not accept fault plans: memoized results "
                "must stay perturbation-free (run repro-chaos directly)",
            )
        scale = request.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool):
            raise HttpError(400, f"bad scale {scale!r}")
        dispatch = request.get("dispatch")
        if dispatch is None:
            dispatch = self.default_dispatch
        if dispatch is not None and dispatch not in DISPATCH_MODES:
            raise HttpError(
                400, f"bad dispatch {dispatch!r} (known: {', '.join(DISPATCH_MODES)})"
            )
        try:
            profiles = baseline.resolve_profiles(request.get("profiles"))
            suite = baseline.resolve_suite(request.get("benchmarks"), float(scale))
        except ValueError as exc:
            raise HttpError(400, str(exc))
        job = {
            "id": self._next_job,
            "status": "queued",
            "created_unix": time.time(),
            "request": {
                "benchmarks": [name for name, _params in suite],
                "profiles": [p.name for p in profiles],
                "scale": float(scale),
                "dispatch": dispatch,
                "git_sha": request.get("git_sha"),
            },
            "stats": None,
            "error": None,
            # wall-clock lifecycle stamps: unix pairs for display,
            # monotonic pairs for durations (immune to clock steps)
            "submitted_monotonic": time.monotonic(),
            "started_unix": None,
            "started_monotonic": None,
            "finished_unix": None,
            "finished_monotonic": None,
            # submission's trace: job spans are parented under the
            # submitting request's http.request span
            "trace_id": ctx.trace_id,
            "submit_span": ctx.span_id,
            "coalesce_key": _coalesce_key(
                suite, profiles, dispatch, request.get("git_sha")
            ),
            "coalesced_with": None,
            "followers": [],
        }
        self._next_job += 1
        self._jobs[job["id"]] = job
        primary = self._jobs.get(
            self._inflight_keys.get(job["coalesce_key"], -1)
        )
        if primary is not None and primary["status"] in ("queued", "running"):
            # identical in-flight submission: attach, don't re-execute
            job["coalesced_with"] = primary["id"]
            primary["followers"].append(job["id"])
            if primary["status"] == "running":
                self._mark_running(job, time.monotonic())
            self.registry.counter("service.coalesced_total").add(1)
            if job["trace_id"] is not None:
                self._job_context(job).event(
                    "job.coalesced", job=job["id"], primary=primary["id"]
                )
        else:
            self._inflight_keys[job["coalesce_key"]] = job["id"]
            self._pending.append(job["id"])
            self._queue.put_nowait(job["id"])
        self.registry.counter("service.jobs").add(1)
        self._refresh_gauges()
        return job

    @staticmethod
    def _mark_running(job: dict, now: float) -> None:
        job["status"] = "running"
        job["started_unix"] = time.time()
        job["started_monotonic"] = now

    def _job_context(self, job: dict) -> TraceContext:
        """The trace position job-lifecycle spans hang off — the submit
        request's span when the submission carried one."""
        if job.get("trace_id") is None:
            return self.tracer.context()
        return self.tracer.context(
            trace_id=job["trace_id"], parent_id=job["submit_span"]
        )

    def _job_config(self, job: dict, ctx) -> dict:
        """Everything the worker subprocess needs, as plain data."""
        return {
            "request": dict(job["request"]),
            "store_path": self.store_path,
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "use_compile_cache": self.use_compile_cache,
            "trace_id": job["trace_id"],
            "parent_span": getattr(ctx, "span_id", None),
        }

    def _absorb_result(self, job: dict, payload: dict, span) -> None:
        """Fold one worker payload into daemon state (event-loop thread):
        adopt the worker's spans, stats and artifact, accumulate the
        daemon-owned compile totals, bump the service counters."""
        for data in payload.get("spans", ()):
            self.tracer.ingest(Span.from_dict(data))
        stats = payload["stats"]
        job["stats"] = stats
        job["artifact"] = payload["artifact"]
        span.set(
            cells=stats["cells"],
            hits=stats["hits"],
            compile_calls=stats["compile_calls"],
        )
        self._compile_totals["compile_source_calls"] += stats["compile_calls"]
        self.registry.counter("service.cells").add(stats["cells"])
        self.registry.counter("service.cache_hits").add(stats["hits"])
        self.registry.counter("service.cache_misses").add(stats["misses"])
        self.registry.counter("service.cells_executed").add(
            stats["cells_executed"]
        )

    def _resolve_followers(self, job: dict) -> None:
        """Propagate a finished primary to its coalesced followers: same
        artifact and timestamps, but zero compiles and zero executed
        cells of their own — they are served entirely from the primary's
        execution."""
        for follower_id in job["followers"]:
            follower = self._jobs[follower_id]
            follower["status"] = job["status"]
            follower["finished_unix"] = job["finished_unix"]
            follower["finished_monotonic"] = job["finished_monotonic"]
            if job["status"] == "done":
                follower["artifact"] = job["artifact"]
                stats = dict(job["stats"])
                stats["hits"] = stats["cells"]
                stats["misses"] = 0
                stats["compile_calls"] = 0
                stats["cells_executed"] = 0
                follower["stats"] = stats
            else:
                follower["error"] = (
                    f"coalesced with job {job['id']}, which failed: "
                    f"{job['error']}"
                )

    async def _drain_jobs(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job_id = await self._queue.get()
            job = self._jobs[job_id]
            try:
                self._pending.remove(job_id)
            except ValueError:
                pass
            now = time.monotonic()
            queue_wait = now - job["submitted_monotonic"]
            self._mark_running(job, now)
            for follower_id in job["followers"]:
                self._mark_running(self._jobs[follower_id], now)
            self._inflight += 1
            self._refresh_gauges()
            ctx = self._job_context(job)
            ctx.record(
                "job.queue_wait",
                t0=job["submitted_monotonic"],
                dur=queue_wait,
                job=job["id"],
                track="queue",
            )
            self.registry.histogram(
                "service.job_queue_wait_us", LATENCY_BUCKETS_US
            ).observe(queue_wait * 1e6)
            try:
                with ctx.child(
                    "job.execute", job=job["id"], track="executor"
                ) as span:
                    payload = await loop.run_in_executor(
                        self._executor,
                        _run_job_subprocess,
                        self._job_config(job, span),
                    )
                    self._absorb_result(job, payload, span)
                job["status"] = "done"
            except Exception as exc:  # noqa: BLE001 — job isolation boundary
                job["status"] = "failed"
                job["error"] = (
                    str(exc)
                    if isinstance(exc, _RemoteJobError)
                    else f"{type(exc).__name__}: {exc}"
                )
                self.registry.counter("service.job_failures").add(1)
            finally:
                job["finished_unix"] = time.time()
                job["finished_monotonic"] = time.monotonic()
                self._inflight -= 1
                if self._inflight_keys.get(job["coalesce_key"]) == job["id"]:
                    del self._inflight_keys[job["coalesce_key"]]
                self._resolve_followers(job)
                self._refresh_gauges()
                self.registry.histogram(
                    "service.job_exec_us", LATENCY_BUCKETS_US
                ).observe(
                    (job["finished_monotonic"] - job["started_monotonic"])
                    * 1e6
                )

    # ---------------------------------------------------------------- routes

    def _job_view(self, job: dict) -> dict:
        queue_wait = run = None
        if job["started_monotonic"] is not None:
            queue_wait = job["started_monotonic"] - job["submitted_monotonic"]
            end = (
                job["finished_monotonic"]
                if job["finished_monotonic"] is not None
                else time.monotonic()
            )
            run = end - job["started_monotonic"]
        # position comes from actual queue membership, not a status scan:
        # failed/stale entries and concurrently-dequeued jobs never shift
        # it, and coalesced followers (which are "queued" but never
        # enqueued) report no position at all
        position = None
        if job["status"] == "queued" and job["coalesced_with"] is None:
            try:
                position = self._pending.index(job["id"]) + 1
            except ValueError:
                position = None
        return {
            "id": job["id"],
            "status": job["status"],
            "created_unix": job["created_unix"],
            "submitted_at": job["created_unix"],
            "started_at": job["started_unix"],
            "finished_at": job["finished_unix"],
            "queue_wait_seconds": queue_wait,
            "run_seconds": run,
            "queue_position": position,
            "trace_id": job["trace_id"],
            "coalesced_with": job["coalesced_with"],
            "followers": list(job["followers"]),
            "request": job["request"],
            "stats": job["stats"],
            "error": job["error"],
        }

    def _get_job(self, job_id: str) -> dict:
        try:
            job = self._jobs[int(job_id)]
        except (KeyError, ValueError):
            raise HttpError(404, f"no job {job_id!r}")
        return job

    def _read_store(self):
        """A read connection for query endpoints — pooled when the daemon
        is started, a throwaway writer-capable one otherwise (tests poke
        handlers on unstarted instances)."""
        if self._read_pool is not None:
            return self._read_pool.connection()
        from ..store import ExperimentStore

        return ExperimentStore(self.store_path)

    def _handle(self, request: Request, ctx=NULL_CONTEXT):
        """Route one request; returns ``(status, payload)`` or
        ``(status, payload, content_type)`` for non-JSON bodies."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            from ..store import SCHEMA_VERSION

            return 200, {
                "ok": True,
                "store": self.store_path,
                "schema_version": SCHEMA_VERSION,
                "workers": self.workers,
            }
        if path == "/metrics" and method == "GET":
            self._refresh_gauges()
            return 200, render_exposition(self.registry), EXPOSITION_CONTENT_TYPE
        if path == "/v1/jobs" and method == "POST":
            job = self._submit(request.json(), ctx)
            return 202, self._job_view(job)
        if path == "/v1/jobs" and method == "GET":
            return 200, {
                "jobs": [self._job_view(j) for j in self._jobs.values()]
            }
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/result"):
                job = self._get_job(rest[: -len("/result")])
                if job["status"] == "failed":
                    raise HttpError(409, job["error"] or "job failed")
                if job["status"] != "done":
                    raise HttpError(404, f"job {job['id']} is {job['status']}")
                return 200, job["artifact"]
            return 200, self._job_view(self._get_job(rest))
        if path == "/v1/traces" and method == "GET":
            return 200, {"traces": self.tracer.trace_ids()}
        if path.startswith("/v1/traces/") and method == "GET":
            trace_id = path[len("/v1/traces/"):]
            spans = self.tracer.snapshot(trace_id)
            if not spans:
                raise HttpError(404, f"no trace {trace_id!r}")
            return 200, {
                "trace": trace_id,
                "spans": [s.to_dict() for s in spans],
            }
        if path == "/v1/stats" and method == "GET":
            with self._read_store() as store:
                counts = store.counts()
            self._refresh_gauges()
            by_status = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_status[job["status"]] += 1
            return 200, {
                "metrics": self.registry.snapshot(),
                # daemon-owned accumulated per-job deltas — never a
                # snapshot of a live process-global mid-execution
                "compile_stats": dict(self._compile_totals),
                "store": counts,
                "swept_tmp_files": self.swept_tmp_files,
                "queue_depth": self._queue.qsize(),
                "inflight": self._inflight,
                "workers": self.workers,
                "journal_mode": self.journal_mode,
                "coalesced_total": self.registry.value(
                    "service.coalesced_total"
                ),
                "read_pool": (
                    None if self._read_pool is None
                    else self._read_pool.stats()
                ),
                "jobs": by_status,
                "uptime_seconds": (
                    time.monotonic() - self._started_monotonic
                    if self._started_monotonic is not None
                    else None
                ),
                "trace": {
                    "buffered_spans": len(self.tracer.snapshot()),
                    "dropped_spans": self.tracer.dropped,
                    "log": (
                        self._trace_sink.path
                        if self._trace_sink is not None
                        else None
                    ),
                },
            }
        if path == "/v1/trends" and method == "GET":
            with self._read_store() as store:
                if "metric" in request.query:
                    rows = store.metric_trend(
                        request.query["metric"],
                        benchmark=request.query.get("benchmark"),
                    )
                else:
                    rows = store.trend(
                        benchmark=request.query.get("benchmark"),
                        profile=request.query.get("profile"),
                        ratio_base=request.query.get("ratio_base"),
                    )
            return 200, {"rows": rows}
        if path == "/v1/admin/gc" and method == "POST":
            cache = self._cache()
            reaped = 0 if cache is None else cache.sweep()
            self.swept_tmp_files += reaped
            self.registry.counter("service.gc_runs").add(1)
            return 200, {
                "reaped_tmp_files": reaped,
                "cache_dir": None if cache is None else cache.root,
            }
        raise HttpError(404, f"no route {method} {request.path}")

    async def _serve_one(self, reader, writer) -> None:
        """One connection: serve requests until the peer closes or a
        request declines keep-alive (the default)."""
        self.registry.counter("service.http_connections").add(1)
        self._connections.add(writer)
        try:
            while await self._serve_request(reader, writer):
                pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _serve_request(self, reader, writer) -> bool:
        """Serve one request off the connection; returns True when the
        connection should be kept open for another."""
        t_request = time.monotonic()
        status, payload, content_type = 500, {"error": "internal error"}, None
        request: Optional[Request] = None
        trace_id = parent = None
        try:
            request = await read_request(reader)
        except HttpError as exc:
            status, payload = exc.status, {"error": exc.message}
        else:
            if request is None:
                return False  # clean EOF between requests
            trace_id, parent = parse_trace_header(
                request.headers.get(TRACE_HEADER)
            )
        # every response — including protocol errors — carries a trace:
        # the http.request span roots the submission's tree (or is the
        # client's child when the header named a parent span)
        trace_id = trace_id or new_trace_id()
        request_span = new_span_id()
        ctx = TraceContext(self.tracer, trace_id, request_span)
        # keep-alive is strictly opt-in (pooled clients ask for it);
        # protocol errors always close
        keep_alive = request is not None and request.wants_keep_alive()
        if request is not None:
            try:
                result = self._handle(request, ctx)
                status, payload = result[0], result[1]
                content_type = result[2] if len(result) > 2 else None
            except HttpError as exc:
                status, payload = exc.status, {"error": exc.message}
            except Exception as exc:  # noqa: BLE001 — keep the daemon alive
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            writer.write(
                format_response(
                    status,
                    payload,
                    content_type=content_type,
                    headers={
                        "X-Repro-Trace": format_trace_header(
                            trace_id, request_span
                        )
                    },
                    keep_alive=keep_alive,
                )
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            # client went away mid-response; the daemon shrugs
            self.registry.counter("service.client_disconnects").add(1)
            keep_alive = False
        finally:
            now = time.monotonic()
            attrs = {"status": status, "track": "http"}
            if request is not None:
                attrs["method"] = request.method
                attrs["path"] = request.path
            self.tracer.record(
                "http.request",
                trace_id,
                parent_id=parent,
                t0=t_request,
                dur=now - t_request,
                attrs=attrs,
                span_id=request_span,
            )
            self.registry.counter("service.http_requests").add(1)
            if status >= 400:
                self.registry.counter("service.http_errors").add(1)
            self.registry.histogram(
                "service.http_latency_us", LATENCY_BUCKETS_US
            ).observe((now - t_request) * 1e6)
        return keep_alive


def write_port_file(path: str, port: int) -> None:
    """Atomically publish the bound port for readiness polling (CI).

    PID-unique temp name (two daemons racing on one path never clobber
    each other's tmp), fsync before rename so a reader that sees the file
    never sees a torn write.
    """
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        handle.write(f"{port}\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
