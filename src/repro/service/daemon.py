"""The experiment daemon: benchmark-as-a-service over the result store.

An :class:`ExperimentService` owns one SQLite experiment store and a job
queue.  Submitted jobs are (benchmarks x profiles) matrices; each job
runs through :func:`repro.metrics.baseline.collect` with the store
attached, so cells already on record are **served** (zero compiles, zero
guest cycles — the memo key is content-addressed on compiler version,
profile, benchmark, canonical overrides and dispatch engine) and only
novel cells execute, through the same resilient pool every CLI uses.
The returned artifact is byte-identical to a direct serial run: that is
the daemon-vs-direct identity invariant the test suite pins.

Every request is traced (:mod:`repro.trace`): the daemon parses
``X-Repro-Trace`` off the wire (minting a fresh trace id when absent),
roots an ``http.request`` span per connection, and threads the context
through submit -> queue wait -> executor -> ``baseline.collect`` ->
pool fan-out -> store, so one submission is one span tree across the
whole stack.  The span buffer is served on ``GET /v1/traces/<id>``, an
optional JSONL sink (``trace_log=``) persists spans as they close, and
``GET /metrics`` exposes the registry — queue depth and inflight gauges,
HTTP/queue-wait/execution latency histograms — in Prometheus text
exposition format.  All of this is wall-clock operational telemetry;
none of it touches measured artifacts.

Everything is standard library: asyncio sockets, hand-rolled HTTP/1.1
framing (:mod:`repro.service.http`), ``sqlite3`` underneath.  Jobs
execute one at a time in a thread-pool executor — the experiment matrix
itself parallelizes via ``--jobs``, not via concurrent collections
(which would interleave COMPILE_STATS accounting and compile-cache
writes).
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Dict, Optional

from ..metrics.exposition import EXPOSITION_CONTENT_TYPE, render_exposition
from ..metrics.registry import MetricsRegistry
from ..trace import (
    NULL_CONTEXT,
    TRACE_HEADER,
    JsonlSink,
    TraceContext,
    Tracer,
    format_trace_header,
    new_span_id,
    new_trace_id,
    parse_trace_header,
)
from .http import HttpError, Request, format_response, read_request

#: job lifecycle: queued -> running -> done | failed
JOB_STATES = ("queued", "running", "done", "failed")

#: microsecond-scale latency buckets for the service histograms
#: (100us .. ~100s; jobs that execute cells land in the upper decades,
#: memo-served ones in the lower)
LATENCY_BUCKETS_US = (
    100, 1_000, 5_000, 25_000, 100_000, 500_000,
    2_000_000, 10_000_000, 30_000_000, 100_000_000,
)


class ExperimentService:
    """One daemon instance: an HTTP front end over a store-backed queue."""

    def __init__(
        self,
        store_path: Optional[str] = None,
        *,
        jobs=None,
        cache_dir: Optional[str] = None,
        use_compile_cache: bool = True,
        default_dispatch: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        trace_log: Optional[str] = None,
    ):
        from ..store import default_store_path

        self.store_path = store_path or default_store_path()
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.use_compile_cache = use_compile_cache
        self.default_dispatch = default_dispatch
        self.registry = registry if registry is not None else MetricsRegistry()
        self._trace_sink = JsonlSink(trace_log) if trace_log else None
        self.tracer = Tracer(
            sinks=(self._trace_sink,) if self._trace_sink else ()
        )
        self._jobs: Dict[int, dict] = {}
        self._next_job = 1
        self._queue: asyncio.Queue = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker: Optional[asyncio.Task] = None
        self._inflight = 0
        self.started_unix: Optional[float] = None
        self._started_monotonic: Optional[float] = None
        self.swept_tmp_files = 0
        # register the service gauges/histograms up front so a fresh
        # daemon's /metrics already carries the full instrument set
        self.registry.gauge("service.queue_depth")
        self.registry.gauge("service.inflight")
        self.registry.histogram("service.http_latency_us", LATENCY_BUCKETS_US)
        self.registry.histogram(
            "service.job_queue_wait_us", LATENCY_BUCKETS_US
        )
        self.registry.histogram("service.job_exec_us", LATENCY_BUCKETS_US)

    # ------------------------------------------------------------- lifecycle

    def _cache(self):
        if not self.use_compile_cache:
            return None
        from ..parallel import CompileCache

        return CompileCache(self.cache_dir)

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the listener (port 0 = ephemeral), run startup GC, apply
        store migrations, and start the queue worker."""
        cache = self._cache()
        if cache is not None:
            # reap compile-cache temp files orphaned by previously killed
            # writers, so a crashed run never bloats the daemon's cache
            self.swept_tmp_files = cache.sweep()
        from ..store import ExperimentStore

        ExperimentStore(self.store_path).close()  # create / migrate up front
        self._server = await asyncio.start_server(self._serve_one, host, port)
        self._worker = asyncio.ensure_future(self._drain_jobs())
        self.started_unix = time.time()
        self._started_monotonic = time.monotonic()

    @property
    def address(self):
        """``(host, port)`` actually bound (resolves port 0)."""
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._trace_sink is not None:
            self._trace_sink.close()
            self._trace_sink = None

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("service not started")
        await self._server.serve_forever()

    # ------------------------------------------------------------- job queue

    def _refresh_gauges(self) -> None:
        self.registry.gauge("service.queue_depth").set(self._queue.qsize())
        self.registry.gauge("service.inflight").set(self._inflight)

    def _submit(self, request: dict, ctx=NULL_CONTEXT) -> dict:
        from ..metrics import baseline
        from ..vm.dispatch import DISPATCH_MODES

        if request.get("plan") or request.get("faults"):
            raise HttpError(
                409,
                "the service does not accept fault plans: memoized results "
                "must stay perturbation-free (run repro-chaos directly)",
            )
        scale = request.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool):
            raise HttpError(400, f"bad scale {scale!r}")
        dispatch = request.get("dispatch")
        if dispatch is None:
            dispatch = self.default_dispatch
        if dispatch is not None and dispatch not in DISPATCH_MODES:
            raise HttpError(
                400, f"bad dispatch {dispatch!r} (known: {', '.join(DISPATCH_MODES)})"
            )
        try:
            profiles = baseline.resolve_profiles(request.get("profiles"))
            suite = baseline.resolve_suite(request.get("benchmarks"), float(scale))
        except ValueError as exc:
            raise HttpError(400, str(exc))
        job = {
            "id": self._next_job,
            "status": "queued",
            "created_unix": time.time(),
            "request": {
                "benchmarks": [name for name, _params in suite],
                "profiles": [p.name for p in profiles],
                "scale": float(scale),
                "dispatch": dispatch,
                "git_sha": request.get("git_sha"),
            },
            "stats": None,
            "error": None,
            # wall-clock lifecycle stamps: unix pairs for display,
            # monotonic pairs for durations (immune to clock steps)
            "submitted_monotonic": time.monotonic(),
            "started_unix": None,
            "started_monotonic": None,
            "finished_unix": None,
            "finished_monotonic": None,
            # submission's trace: job spans are parented under the
            # submitting request's http.request span
            "trace_id": ctx.trace_id,
            "submit_span": ctx.span_id,
        }
        self._next_job += 1
        self._jobs[job["id"]] = job
        self._queue.put_nowait(job["id"])
        self.registry.counter("service.jobs").add(1)
        self._refresh_gauges()
        return job

    def _job_context(self, job: dict) -> TraceContext:
        """The trace position job-lifecycle spans hang off — the submit
        request's span when the submission carried one."""
        if job.get("trace_id") is None:
            return self.tracer.context()
        return self.tracer.context(
            trace_id=job["trace_id"], parent_id=job["submit_span"]
        )

    async def _drain_jobs(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job_id = await self._queue.get()
            job = self._jobs[job_id]
            now = time.monotonic()
            queue_wait = now - job["submitted_monotonic"]
            job["status"] = "running"
            job["started_unix"] = time.time()
            job["started_monotonic"] = now
            self._inflight += 1
            self._refresh_gauges()
            ctx = self._job_context(job)
            ctx.record(
                "job.queue_wait",
                t0=job["submitted_monotonic"],
                dur=queue_wait,
                job=job["id"],
                track="queue",
            )
            self.registry.histogram(
                "service.job_queue_wait_us", LATENCY_BUCKETS_US
            ).observe(queue_wait * 1e6)
            try:
                with ctx.child(
                    "job.execute", job=job["id"], track="executor"
                ) as span:
                    await loop.run_in_executor(
                        None, self._execute_job, job, span
                    )
                job["status"] = "done"
            except Exception as exc:  # noqa: BLE001 — job isolation boundary
                job["status"] = "failed"
                job["error"] = f"{type(exc).__name__}: {exc}"
                self.registry.counter("service.job_failures").add(1)
            finally:
                job["finished_unix"] = time.time()
                job["finished_monotonic"] = time.monotonic()
                self._inflight -= 1
                self._refresh_gauges()
                self.registry.histogram(
                    "service.job_exec_us", LATENCY_BUCKETS_US
                ).observe(
                    (job["finished_monotonic"] - job["started_monotonic"])
                    * 1e6
                )

    def _execute_job(self, job: dict, ctx=NULL_CONTEXT) -> None:
        """Blocking body of one job — runs on the executor thread with its
        own store connection (sqlite3 objects are thread-bound)."""
        from ..lang.compiler import COMPILE_STATS
        from ..metrics import baseline
        from ..store import ExperimentStore

        request = job["request"]
        profiles = baseline.resolve_profiles(request["profiles"])
        suite = baseline.resolve_suite(request["benchmarks"], request["scale"])
        compiles_before = COMPILE_STATS["compile_source_calls"]
        with ExperimentStore(self.store_path) as store:
            artifact = baseline.collect(
                profiles=profiles,
                suite=suite,
                scale=request["scale"],
                git_sha=request["git_sha"],
                jobs=self.jobs,
                cache=self._cache(),
                dispatch=request["dispatch"],
                store=store,
                trace=ctx,
            )
        stats = dict(baseline.collect.last_store)
        stats["compile_calls"] = (
            COMPILE_STATS["compile_source_calls"] - compiles_before
        )
        stats["cells_executed"] = stats["cells"] - stats["hits"]
        job["stats"] = stats
        job["artifact"] = artifact
        ctx.set(
            cells=stats["cells"],
            hits=stats["hits"],
            compile_calls=stats["compile_calls"],
        )
        self.registry.counter("service.cells").add(stats["cells"])
        self.registry.counter("service.cache_hits").add(stats["hits"])
        self.registry.counter("service.cache_misses").add(stats["misses"])
        self.registry.counter("service.cells_executed").add(
            stats["cells_executed"]
        )

    # ---------------------------------------------------------------- routes

    def _job_view(self, job: dict) -> dict:
        queue_wait = run = None
        if job["started_monotonic"] is not None:
            queue_wait = job["started_monotonic"] - job["submitted_monotonic"]
            end = (
                job["finished_monotonic"]
                if job["finished_monotonic"] is not None
                else time.monotonic()
            )
            run = end - job["started_monotonic"]
        position = None
        if job["status"] == "queued":
            position = 1 + sum(
                1
                for other in self._jobs.values()
                if other["status"] == "queued" and other["id"] < job["id"]
            )
        return {
            "id": job["id"],
            "status": job["status"],
            "created_unix": job["created_unix"],
            "submitted_at": job["created_unix"],
            "started_at": job["started_unix"],
            "finished_at": job["finished_unix"],
            "queue_wait_seconds": queue_wait,
            "run_seconds": run,
            "queue_position": position,
            "trace_id": job["trace_id"],
            "request": job["request"],
            "stats": job["stats"],
            "error": job["error"],
        }

    def _get_job(self, job_id: str) -> dict:
        try:
            job = self._jobs[int(job_id)]
        except (KeyError, ValueError):
            raise HttpError(404, f"no job {job_id!r}")
        return job

    def _handle(self, request: Request, ctx=NULL_CONTEXT):
        """Route one request; returns ``(status, payload)`` or
        ``(status, payload, content_type)`` for non-JSON bodies."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            from ..store import SCHEMA_VERSION

            return 200, {
                "ok": True,
                "store": self.store_path,
                "schema_version": SCHEMA_VERSION,
            }
        if path == "/metrics" and method == "GET":
            self._refresh_gauges()
            return 200, render_exposition(self.registry), EXPOSITION_CONTENT_TYPE
        if path == "/v1/jobs" and method == "POST":
            job = self._submit(request.json(), ctx)
            return 202, self._job_view(job)
        if path == "/v1/jobs" and method == "GET":
            return 200, {
                "jobs": [self._job_view(j) for j in self._jobs.values()]
            }
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/result"):
                job = self._get_job(rest[: -len("/result")])
                if job["status"] == "failed":
                    raise HttpError(409, job["error"] or "job failed")
                if job["status"] != "done":
                    raise HttpError(404, f"job {job['id']} is {job['status']}")
                return 200, job["artifact"]
            return 200, self._job_view(self._get_job(rest))
        if path == "/v1/traces" and method == "GET":
            return 200, {"traces": self.tracer.trace_ids()}
        if path.startswith("/v1/traces/") and method == "GET":
            trace_id = path[len("/v1/traces/"):]
            spans = self.tracer.snapshot(trace_id)
            if not spans:
                raise HttpError(404, f"no trace {trace_id!r}")
            return 200, {
                "trace": trace_id,
                "spans": [s.to_dict() for s in spans],
            }
        if path == "/v1/stats" and method == "GET":
            from ..lang.compiler import COMPILE_STATS
            from ..store import ExperimentStore

            with ExperimentStore(self.store_path) as store:
                counts = store.counts()
            self._refresh_gauges()
            by_status = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_status[job["status"]] += 1
            return 200, {
                "metrics": self.registry.snapshot(),
                "compile_stats": dict(COMPILE_STATS),
                "store": counts,
                "swept_tmp_files": self.swept_tmp_files,
                "queue_depth": self._queue.qsize(),
                "inflight": self._inflight,
                "jobs": by_status,
                "uptime_seconds": (
                    time.monotonic() - self._started_monotonic
                    if self._started_monotonic is not None
                    else None
                ),
                "trace": {
                    "buffered_spans": len(self.tracer.snapshot()),
                    "dropped_spans": self.tracer.dropped,
                    "log": (
                        self._trace_sink.path
                        if self._trace_sink is not None
                        else None
                    ),
                },
            }
        if path == "/v1/trends" and method == "GET":
            from ..store import ExperimentStore

            with ExperimentStore(self.store_path) as store:
                if "metric" in request.query:
                    rows = store.metric_trend(
                        request.query["metric"],
                        benchmark=request.query.get("benchmark"),
                    )
                else:
                    rows = store.trend(
                        benchmark=request.query.get("benchmark"),
                        profile=request.query.get("profile"),
                        ratio_base=request.query.get("ratio_base"),
                    )
            return 200, {"rows": rows}
        if path == "/v1/admin/gc" and method == "POST":
            cache = self._cache()
            reaped = 0 if cache is None else cache.sweep()
            self.swept_tmp_files += reaped
            self.registry.counter("service.gc_runs").add(1)
            return 200, {
                "reaped_tmp_files": reaped,
                "cache_dir": None if cache is None else cache.root,
            }
        raise HttpError(404, f"no route {method} {request.path}")

    async def _serve_one(self, reader, writer) -> None:
        t_request = time.monotonic()
        status, payload, content_type = 500, {"error": "internal error"}, None
        request: Optional[Request] = None
        trace_id = parent = None
        try:
            request = await read_request(reader)
        except HttpError as exc:
            status, payload = exc.status, {"error": exc.message}
        else:
            if request is None:
                writer.close()
                return
            trace_id, parent = parse_trace_header(
                request.headers.get(TRACE_HEADER)
            )
        # every response — including protocol errors — carries a trace:
        # the http.request span roots the submission's tree (or is the
        # client's child when the header named a parent span)
        trace_id = trace_id or new_trace_id()
        request_span = new_span_id()
        ctx = TraceContext(self.tracer, trace_id, request_span)
        if request is not None:
            try:
                result = self._handle(request, ctx)
                status, payload = result[0], result[1]
                content_type = result[2] if len(result) > 2 else None
            except HttpError as exc:
                status, payload = exc.status, {"error": exc.message}
            except Exception as exc:  # noqa: BLE001 — keep the daemon alive
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            writer.write(
                format_response(
                    status,
                    payload,
                    content_type=content_type,
                    headers={
                        "X-Repro-Trace": format_trace_header(
                            trace_id, request_span
                        )
                    },
                )
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            # client went away mid-response; the daemon shrugs
            self.registry.counter("service.client_disconnects").add(1)
        finally:
            writer.close()
            now = time.monotonic()
            attrs = {"status": status, "track": "http"}
            if request is not None:
                attrs["method"] = request.method
                attrs["path"] = request.path
            self.tracer.record(
                "http.request",
                trace_id,
                parent_id=parent,
                t0=t_request,
                dur=now - t_request,
                attrs=attrs,
                span_id=request_span,
            )
            self.registry.counter("service.http_requests").add(1)
            if status >= 400:
                self.registry.counter("service.http_errors").add(1)
            self.registry.histogram(
                "service.http_latency_us", LATENCY_BUCKETS_US
            ).observe((now - t_request) * 1e6)


def write_port_file(path: str, port: int) -> None:
    """Atomically publish the bound port for readiness polling (CI).

    PID-unique temp name (two daemons racing on one path never clobber
    each other's tmp), fsync before rename so a reader that sees the file
    never sees a torn write.
    """
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        handle.write(f"{port}\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
