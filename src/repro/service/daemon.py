"""The experiment daemon: benchmark-as-a-service over the result store.

An :class:`ExperimentService` owns one SQLite experiment store and a job
queue.  Submitted jobs are (benchmarks x profiles) matrices; each job
runs through :func:`repro.metrics.baseline.collect` with the store
attached, so cells already on record are **served** (zero compiles, zero
guest cycles — the memo key is content-addressed on compiler version,
profile, benchmark, canonical overrides and dispatch engine) and only
novel cells execute, through the same resilient pool every CLI uses.
The returned artifact is byte-identical to a direct serial run: that is
the daemon-vs-direct identity invariant the test suite pins.

Concurrency model (``workers=`` / ``repro-serve --workers N|auto``):

* N drain tasks pull from one queue into a thread-pool executor, and
  **each job executes in its own forked subprocess** — per-job isolation
  of every piece of process-global state that concurrent in-process
  collections would corrupt (the ``COMPILE_STATS`` counter, the
  ``collect.last_*`` function attributes, compile-cache writes).  The
  worker measures its own compile delta and reports it back over a pipe,
  so warm-path zero-compile assertions stay exact under overlap.
* Identical in-flight submissions **coalesce**: a submission whose
  content-addressed cell-key set (plus git SHA) matches a queued or
  running job attaches to it as a follower instead of re-executing —
  same artifact, zero compiles, zero guest cycles, ``coalesced_with`` in
  the job view and a ``service.coalesced_total`` counter.  Fault-plan
  submissions are rejected before coalescing can see them.
* Read endpoints (``/v1/trends``, ``/v1/stats``) draw from a
  :class:`~repro.store.StoreReadPool` of read-only connections against
  the WAL-mode store, so high-QPS reads never contend with the
  appending job workers.
* Connections are ``Connection: close`` by default; a client that sends
  ``Connection: keep-alive`` (the pooled ``ServiceClient``) gets the
  connection reused across requests.

Robustness layer (overload, wedged jobs, crashed daemons, shared stores):

* **Admission control** — ``max_queue`` bounds the job queue; an
  over-capacity submission is shed with a structured ``429`` carrying a
  deterministic ``Retry-After`` derived from queue depth and the
  ``service.job_exec_us`` latency histogram.  A ``degraded`` daemon (or
  one whose breaker tripped after K consecutive job-subprocess failures,
  or one that lost the writer lease) runs *memo-only*: submissions whose
  cells are all warm in the store still serve (read-only, nothing
  appended), cold work is refused with a structured ``503``.
* **Job deadlines** — every job can carry a deadline (service default,
  client-overridable, capped).  The executor shepherd polls the result
  pipe in bounded steps instead of blocking, so a stuck pipe can never
  wedge a drain task; on expiry the job's subprocess *group* is killed
  (each job leads its own process group, so forked pool workers die with
  it) and the job fails with a structured ``deadline`` failure.
* **Lease-fenced writes** — the daemon holds the store's expiring writer
  lease (:mod:`repro.store.lease`); each job's append re-validates the
  fencing token inside the transaction, so a daemon that lost the lease
  mid-job gets a structured ``lease-lost`` failure, never a torn append.
  The lease loser degrades to memo-only and retries acquisition with
  deterministic jittered backoff.
* **Graceful drain** — ``drain()`` (SIGTERM in ``repro-serve``) stops
  admission immediately (structured 503s), sheds queued jobs, lets
  running jobs finish up to the drain budget then kills their groups,
  flushes trace sinks and releases the lease.

Every shed/killed/refused outcome is an attributed structured failure —
``job["failure"] = {"kind": ...}`` — never a daemon crash or silent hang.


All daemon bookkeeping — job dicts, the queue mirror, metric counters —
mutates only on the event-loop thread; executor threads do nothing but
shepherd the worker subprocess and hand its payload back, so no job
state needs locking.

Every request is traced (:mod:`repro.trace`): the daemon parses
``X-Repro-Trace`` off the wire (minting a fresh trace id when absent),
roots an ``http.request`` span per request, and threads the context
through submit -> queue wait -> executor -> ``baseline.collect`` ->
pool fan-out -> store.  The worker subprocess records its spans into a
local tracer and ships them back with the result; the daemon ingests
them into its ring buffer and JSONL sink, so one submission is still one
span tree across the whole stack.  The span buffer is served on ``GET
/v1/traces/<id>``, and ``GET /metrics`` exposes the registry in
Prometheus text exposition format.  All of this is wall-clock
operational telemetry; none of it touches measured artifacts.

Everything is standard library: asyncio sockets, hand-rolled HTTP/1.1
framing (:mod:`repro.service.http`), ``multiprocessing`` pipes,
``sqlite3`` underneath.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import math
import os
import signal
import socket
import sqlite3
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set

from ..metrics.exposition import EXPOSITION_CONTENT_TYPE, render_exposition
from ..metrics.registry import MetricsRegistry
from ..trace import (
    NULL_CONTEXT,
    TRACE_HEADER,
    JsonlSink,
    Span,
    TraceContext,
    Tracer,
    format_trace_header,
    new_span_id,
    new_trace_id,
    parse_trace_header,
)
from .http import HttpError, Request, format_response, read_request

#: job lifecycle: queued -> running -> done | failed
JOB_STATES = ("queued", "running", "done", "failed")

#: microsecond-scale latency buckets for the service histograms
#: (100us .. ~100s; jobs that execute cells land in the upper decades,
#: memo-served ones in the lower)
LATENCY_BUCKETS_US = (
    100, 1_000, 5_000, 25_000, 100_000, 500_000,
    2_000_000, 10_000_000, 30_000_000, 100_000_000,
)

#: hard ceiling on any job deadline when no service default caps it
DEADLINE_CAP_SECONDS = 3600.0

#: Retry-After is clamped to this window (seconds)
RETRY_AFTER_MIN, RETRY_AFTER_MAX = 1, 120

#: per-process service instance counter feeding lease holder identities
_INSTANCE_IDS = itertools.count(1)


class _RemoteJobError(Exception):
    """A job failure reported by the worker subprocess — the message is
    already formatted (``TypeName: detail``), so the daemon surfaces it
    verbatim instead of nesting exception names.  ``kind`` classifies the
    failure (``error`` | ``lease-lost`` | ``worker-death``) for the
    structured ``job["failure"]`` block."""

    def __init__(self, message: str, kind: str = "error"):
        super().__init__(message)
        self.kind = kind


class _JobKilled(Exception):
    """The daemon killed the job's subprocess group on purpose —
    ``kind`` says why (``deadline`` | ``drain`` | ``fault``)."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


def _collect_in_worker(config: dict) -> dict:
    """The actual collection, running inside the job subprocess.

    Everything process-global is private here: ``COMPILE_STATS``, the
    ``collect.last_*`` attributes, the store connection.  Spans land in a
    local tracer rooted at the job's ``job.execute`` span and travel back
    as dicts; the compile delta comes from ``collect.last_store`` —
    measured around the execution *in this process*, which is what makes
    per-job compile accounting exact under daemon-level overlap.
    """
    from ..metrics import baseline
    from ..parallel import CompileCache
    from ..store import ExperimentStore

    request = config["request"]
    profiles = baseline.resolve_profiles(request["profiles"])
    suite = baseline.resolve_suite(request["benchmarks"], request["scale"])
    tracer = Tracer()
    ctx = TraceContext(
        tracer, config["trace_id"] or new_trace_id(), config["parent_span"]
    )
    cache = (
        CompileCache(config["cache_dir"])
        if config["use_compile_cache"]
        else None
    )
    # memo-only jobs (degraded daemon / breaker open / lease lost) serve
    # warm cells through a read-only store handle and append nothing;
    # admission guaranteed every cell is a hit.  Normal jobs arm the
    # daemon's lease fence so an append after losing the lease aborts
    # inside the store transaction instead of interleaving with the
    # new holder's writes.
    memo_only = bool(config.get("memo_only"))
    lease = config.get("lease")
    with ExperimentStore(config["store_path"], read_only=memo_only) as store:
        if lease is not None and not memo_only:
            store.set_write_fence(lease["holder"], lease["token"])
        artifact = baseline.collect(
            profiles=profiles,
            suite=suite,
            scale=request["scale"],
            git_sha=request["git_sha"],
            jobs=config["jobs"],
            cache=cache,
            dispatch=request["dispatch"],
            store=store,
            trace=ctx,
            record=not memo_only,
        )
    stats = dict(baseline.collect.last_store)
    return {
        "artifact": artifact,
        "stats": stats,
        "spans": [span.to_dict() for span in tracer.snapshot()],
    }


def _job_worker(conn, config: dict) -> None:
    """Subprocess entry point: run the collection, ship one message back.

    First act: become a process-group leader, so a deadline/drain kill of
    this job's group reaps every pool worker it forks, never the daemon.
    Failures travel back structured (``{"kind", "message"}``) so the
    daemon can attribute them — a lost lease is ``lease-lost``, anything
    else is ``error``.
    """
    if hasattr(os, "setpgid"):
        try:
            os.setpgid(0, 0)
        except OSError:
            pass
    try:
        message = ("ok", _collect_in_worker(config))
    except BaseException as exc:  # noqa: BLE001 — job isolation boundary
        from ..store.lease import LeaseLost

        kind = "lease-lost" if isinstance(exc, LeaseLost) else "error"
        message = (
            "error",
            {"kind": kind, "message": f"{type(exc).__name__}: {exc}"},
        )
    try:
        conn.send(message)
    finally:
        conn.close()


def _hold_store_lock(path: str, seconds: float, acquired) -> None:
    """Rival-writer subprocess for the ``store_contention`` chaos site:
    hold ``BEGIN IMMEDIATE`` on the store for ``seconds``, signalling
    ``acquired`` once the lock is held."""
    conn = sqlite3.connect(path, timeout=5.0)
    try:
        try:
            conn.execute("BEGIN IMMEDIATE")
        except sqlite3.OperationalError:
            return  # store busier than the chaos plan expected; stand down
        acquired.set()
        time.sleep(seconds)
        conn.execute("COMMIT")
    finally:
        conn.close()


def _reap_job_process(proc, grace: float = 2.0) -> None:
    """Reap one job subprocess, escalating to a process-group SIGKILL.

    ``join(grace)`` first (a cleanly-exiting child costs nothing); a
    child still alive after the grace — or an intentional kill
    (``grace <= 0``) — gets SIGKILL on its *group*: the job leads its own
    pgid (both sides call ``setpgid``), so pool workers it forked die
    with it instead of orphaning.  Every path ends in ``join()``, so no
    zombie outlives the shepherd thread.
    """
    if proc.pid is None:
        return
    escalate = grace <= 0
    if not escalate:
        proc.join(grace)
        escalate = proc.is_alive()
    if escalate:
        if hasattr(os, "killpg"):
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass
        if proc.is_alive():
            proc.kill()
        proc.join(5.0)
    else:
        proc.join()


def _run_job_subprocess(config: dict) -> dict:
    """Run one job in a fresh subprocess; return its result payload.

    Runs on an executor thread.  Fork context where available (same
    choice as the cell pool); the pipe carries exactly one message.  The
    shepherd never blocks on the pipe: it polls in bounded steps,
    checking the job's deadline and cancel flag between polls, so a
    stuck pipe (wedged worker) can never wedge a drain task.  A worker
    that dies without reporting (OOM-kill, hard crash) surfaces as a
    structured job failure, not a daemon crash.

    Shepherd-only keys (stripped before the child sees the config):
    ``_deadline`` (monotonic expiry), ``_cancel`` (``threading.Event``
    set by drain), ``_kill_at_start`` (chaos ``job_kill`` site).
    """
    from ..parallel.pool import _pool_context

    deadline = config.pop("_deadline", None)
    cancel = config.pop("_cancel", None)
    kill_at_start = config.pop("_kill_at_start", False)

    ctx = _pool_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_job_worker, args=(child_conn, config))
    proc.start()
    child_conn.close()
    # parent-side half of the both-sides setpgid idiom: whichever of
    # parent/child runs first makes the child a group leader, so the
    # kill path below can target the group race-free
    if hasattr(os, "setpgid"):
        try:
            os.setpgid(proc.pid, proc.pid)
        except OSError:
            pass
    killed: Optional[str] = None
    kind = payload = None
    try:
        if kill_at_start:
            killed = "fault"
            _reap_job_process(proc, grace=0.0)
        while killed is None:
            if cancel is not None and cancel.is_set():
                killed = "drain"
                _reap_job_process(proc, grace=0.0)
                break
            if deadline is not None and time.monotonic() >= deadline:
                killed = "deadline"
                _reap_job_process(proc, grace=0.0)
                break
            try:
                if parent_conn.poll(0.05):
                    kind, payload = parent_conn.recv()
                    break
            except (EOFError, OSError):
                break
            if not proc.is_alive():
                # drain any message flushed just before the child exited
                try:
                    if parent_conn.poll(0):
                        kind, payload = parent_conn.recv()
                except (EOFError, OSError):
                    pass
                break
    finally:
        parent_conn.close()
        _reap_job_process(proc)
    if killed == "deadline":
        raise _JobKilled(
            "deadline",
            f"job exceeded its deadline; subprocess group "
            f"(pid {proc.pid}) killed",
        )
    if killed == "drain":
        raise _JobKilled(
            "drain",
            f"daemon draining: running job's subprocess group "
            f"(pid {proc.pid}) killed after the drain budget",
        )
    if killed == "fault":
        raise _JobKilled(
            "fault",
            f"chaos fault job_kill: subprocess group (pid {proc.pid}) "
            f"killed at start",
        )
    if kind is None:
        raise _RemoteJobError(
            f"job worker (pid {proc.pid}) died without reporting "
            f"a result (exit code {proc.exitcode})",
            kind="worker-death",
        )
    if kind != "ok":
        if isinstance(payload, dict):
            raise _RemoteJobError(
                payload.get("message", "job failed"),
                kind=payload.get("kind", "error"),
            )
        raise _RemoteJobError(str(payload))
    return payload


def _coalesce_key(suite, profiles, dispatch, git_sha) -> str:
    """The submission-identity digest: the sorted content-addressed cell
    keys (already covering compiler version, profile, benchmark, resolved
    params and dispatch engine) plus the git SHA stamp, which lives in
    the artifact but not in any cell key.  Two submissions with equal
    digests are guaranteed byte-identical artifacts — the precondition
    that makes coalescing a pure optimization."""
    from ..store import cell_key

    digest = hashlib.sha256()
    for key in sorted(
        cell_key(name, profile.name, overrides=params or None, dispatch=dispatch)
        for name, params in suite
        for profile in profiles
    ):
        digest.update(key.encode())
        digest.update(b"\x00")
    digest.update(f"git:{git_sha!r}".encode())
    return digest.hexdigest()


class ExperimentService:
    """One daemon instance: an HTTP front end over a store-backed queue."""

    def __init__(
        self,
        store_path: Optional[str] = None,
        *,
        jobs=None,
        workers=None,
        cache_dir: Optional[str] = None,
        use_compile_cache: bool = True,
        default_dispatch: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        trace_log: Optional[str] = None,
        max_queue=None,
        job_deadline: Optional[float] = None,
        degraded: bool = False,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        drain_grace: float = 5.0,
        use_lease: bool = True,
        lease_ttl: Optional[float] = None,
        fault_plan=None,
    ):
        from ..parallel import resolve_jobs
        from ..store import DEFAULT_LEASE_TTL, default_store_path

        self.store_path = store_path or default_store_path()
        self.jobs = jobs
        #: concurrent job executions (``--workers``): N drain tasks over
        #: one queue, each job in its own subprocess
        self.workers = resolve_jobs(workers)
        self.cache_dir = cache_dir
        self.use_compile_cache = use_compile_cache
        self.default_dispatch = default_dispatch
        #: admission bound on *queued* (not running) jobs; None =
        #: unbounded, "auto" = 4x workers
        if isinstance(max_queue, str):
            text = max_queue.strip().lower()
            if text == "auto":
                max_queue = 4 * self.workers
            else:
                try:
                    max_queue = int(text)
                except ValueError:
                    raise ValueError(f"bad max_queue {max_queue!r}") from None
        if max_queue is not None:
            max_queue = int(max_queue)
            if max_queue < 1:
                raise ValueError("max_queue must be >= 1")
        self.max_queue: Optional[int] = max_queue
        #: default job deadline (seconds) — also the cap on client
        #: overrides; None = no default, overrides capped at
        #: DEADLINE_CAP_SECONDS
        self.job_deadline = None if job_deadline is None else float(job_deadline)
        self.deadline_cap = (
            self.job_deadline
            if self.job_deadline is not None
            else DEADLINE_CAP_SECONDS
        )
        #: operator-forced memo-only mode (vs breaker/lease, which trip it
        #: automatically)
        self.degraded = bool(degraded)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self.drain_grace = float(drain_grace)
        self.use_lease = bool(use_lease)
        self.lease_ttl = float(lease_ttl) if lease_ttl else DEFAULT_LEASE_TTL
        #: this daemon's lease holder identity — per *instance*, not per
        #: process: two services in one process (tests, embedders) must
        #: not mistake each other's lease for a self-renewal
        self.holder_id = (
            f"{socket.gethostname()}:{os.getpid()}:{next(_INSTANCE_IDS)}"
        )
        #: optional FaultPlan with service sites armed (chaos harness
        #: only; request-level fault plans are still rejected with 409)
        self.fault_plan = fault_plan
        self._draining = False
        self._breaker_consecutive = 0
        self._breaker_opened_monotonic: Optional[float] = None
        self._rejected: Dict[str, int] = {}
        self._lease = None
        self._lease_held = False
        self._lease_attempts = 0
        self._lease_task: Optional[asyncio.Task] = None
        self.registry = registry if registry is not None else MetricsRegistry()
        self._trace_sink = JsonlSink(trace_log) if trace_log else None
        self.tracer = Tracer(
            sinks=(self._trace_sink,) if self._trace_sink else ()
        )
        self._jobs: Dict[int, dict] = {}
        self._next_job = 1
        self._queue: asyncio.Queue = asyncio.Queue()
        #: mirror of the queue's job ids in dequeue order — the source of
        #: truth for ``queue_position`` (a job leaves it the moment a
        #: drain task picks it up, unlike a status scan over ``_jobs``)
        self._pending: List[int] = []
        #: coalesce digest -> primary job id, for every queued/running job
        self._inflight_keys: Dict[str, int] = {}
        #: daemon-owned compile accounting: the sum of per-job deltas the
        #: workers report — never a snapshot of any process-global
        self._compile_totals: Dict[str, int] = {"compile_source_calls": 0}
        self._server: Optional[asyncio.AbstractServer] = None
        self._drainers: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._read_pool = None
        self._connections: Set[object] = set()
        self._inflight = 0
        self.started_unix: Optional[float] = None
        self._started_monotonic: Optional[float] = None
        self.swept_tmp_files = 0
        self.journal_mode: Optional[str] = None
        # register the service gauges/histograms/counters up front so a
        # fresh daemon's /metrics already carries the full instrument set
        self.registry.gauge("service.queue_depth")
        self.registry.gauge("service.inflight")
        self.registry.gauge("service.draining")
        self.registry.gauge("service.breaker_open").set(0)
        self.registry.gauge("service.lease_held")
        self.registry.counter("service.coalesced_total")
        self.registry.counter("service.rejected_total")
        self.registry.counter("service.shed_total")
        self.registry.counter("service.deadline_kills")
        self.registry.counter("service.drain_kills")
        self.registry.counter("service.breaker_trips")
        self.registry.counter("service.lease_lost_total")
        self.registry.counter("service.fault_injections")
        self.registry.histogram("service.http_latency_us", LATENCY_BUCKETS_US)
        self.registry.histogram(
            "service.job_queue_wait_us", LATENCY_BUCKETS_US
        )
        self.registry.histogram("service.job_exec_us", LATENCY_BUCKETS_US)

    # ------------------------------------------------------------- lifecycle

    def _cache(self):
        if not self.use_compile_cache:
            return None
        from ..parallel import CompileCache

        return CompileCache(self.cache_dir)

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the listener (port 0 = ephemeral), run startup GC, apply
        store migrations, and start the drain tasks."""
        cache = self._cache()
        if cache is not None:
            # reap compile-cache temp files orphaned by previously killed
            # writers, so a crashed run never bloats the daemon's cache
            self.swept_tmp_files = cache.sweep()
        from ..store import ExperimentStore, StoreReadPool

        # create / migrate / switch to WAL up front, then warm the
        # read-only pool the query endpoints draw from
        store = ExperimentStore(self.store_path)
        self.journal_mode = store.journal_mode
        store.close()
        self._read_pool = StoreReadPool(
            self.store_path, size=max(2, self.workers)
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-job"
        )
        if self.use_lease:
            from ..store import WriterLease

            self._lease = WriterLease(
                self.store_path, holder=self.holder_id, ttl=self.lease_ttl
            )
            self._lease_held = self._lease.try_acquire()
            self.registry.gauge("service.lease_held").set(
                1 if self._lease_held else 0
            )
            self._lease_task = asyncio.ensure_future(self._lease_loop())
        self._server = await asyncio.start_server(self._serve_one, host, port)
        self._drainers = [
            asyncio.ensure_future(self._drain_jobs())
            for _ in range(self.workers)
        ]
        self.started_unix = time.time()
        self._started_monotonic = time.monotonic()

    @property
    def address(self):
        """``(host, port)`` actually bound (resolves port 0)."""
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        if self._lease_task is not None:
            self._lease_task.cancel()
            try:
                await self._lease_task
            except asyncio.CancelledError:
                pass
            self._lease_task = None
        if self._lease is not None:
            try:
                if self._lease_held:
                    self._lease.release()
            finally:
                self._lease.close()
                self._lease = None
                self._lease_held = False
                self.registry.gauge("service.lease_held").set(0)
        for task in self._drainers:
            task.cancel()
        for task in self._drainers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._drainers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        # keep-alive clients may still hold connections open; close them
        # so stop() never blocks on an idle peer
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._read_pool is not None:
            self._read_pool.close()
            self._read_pool = None
        if self._trace_sink is not None:
            self._trace_sink.close()
            self._trace_sink = None

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("service not started")
        await self._server.serve_forever()

    # --------------------------------------------------------- writer lease

    async def _lease_loop(self) -> None:
        """Hold the writer lease: renew at ttl/3 while held; when lost,
        retry acquisition on the deterministic jittered backoff schedule
        (memo-only mode covers the gap)."""
        loop = asyncio.get_event_loop()
        while self._lease is not None:
            if self._lease_held:
                await asyncio.sleep(self.lease_ttl / 3.0)
                if self._lease is None:
                    return
                ok = await loop.run_in_executor(None, self._lease.renew)
                if not ok:
                    self._note_lease_lost("renewal refused: lease was stolen")
            else:
                delay = self._lease.backoff_delay(self._lease_attempts)
                self._lease_attempts += 1
                await asyncio.sleep(delay)
                if self._lease is None:
                    return
                ok = await loop.run_in_executor(None, self._lease.try_acquire)
                if ok:
                    self._lease_held = True
                    self._lease_attempts = 0
                    self.registry.gauge("service.lease_held").set(1)

    def _note_lease_lost(self, detail: str) -> None:
        """Event-loop-thread bookkeeping for a lost lease: stop fencing
        new appends (memo-only until re-acquired), count it, and let the
        lease loop race for re-acquisition."""
        if not self._lease_held:
            return
        self._lease_held = False
        self._lease_attempts = 0
        self.registry.counter("service.lease_lost_total").add(1)
        self.registry.gauge("service.lease_held").set(0)

    # ------------------------------------------------------ graceful drain

    def begin_drain(self) -> None:
        """Stop admission *now* and shed every queued job with a
        structured ``shed`` failure (their result polls answer 503).
        Running jobs keep running — :meth:`drain` bounds them."""
        if self._draining:
            return
        self._draining = True
        self.registry.gauge("service.draining").set(1)
        now_unix, now_mono = time.time(), time.monotonic()
        for job_id in list(self._pending):
            job = self._jobs[job_id]
            job["status"] = "failed"
            job["error"] = "daemon draining: job shed before execution"
            job["failure"] = {"kind": "shed", "detail": job["error"]}
            job["finished_unix"] = now_unix
            job["finished_monotonic"] = now_mono
            if self._inflight_keys.get(job["coalesce_key"]) == job["id"]:
                del self._inflight_keys[job["coalesce_key"]]
            self._resolve_followers(job)
            self.registry.counter("service.shed_total").add(1)
        self._pending.clear()
        self._refresh_gauges()

    async def drain(self, grace: Optional[float] = None) -> None:
        """Graceful shutdown: stop admission, shed the queue, give
        running jobs up to ``grace`` seconds (default ``drain_grace``),
        kill the stragglers' subprocess groups, flush trace sinks,
        release the lease, stop the server."""
        grace = self.drain_grace if grace is None else float(grace)
        self.begin_drain()
        deadline = time.monotonic() + max(0.0, grace)
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        if self._inflight:
            for job in self._jobs.values():
                if job["status"] == "running" and job.get("_cancel") is not None:
                    job["_cancel"].set()
                    self.registry.counter("service.drain_kills").add(1)
            # the cancel flag is polled every 50ms by the shepherds; give
            # the kill+reap path a bounded window to come home
            hard = time.monotonic() + 30.0
            while self._inflight and time.monotonic() < hard:
                await asyncio.sleep(0.05)
        self.tracer.flush()
        await self.stop()

    # ------------------------------------------------------------ admission

    def _retry_after(self) -> int:
        """Deterministic Retry-After: how long until the backlog ahead of
        a new submission drains, from queue depth and the measured mean
        job execution latency (1s when no job has completed yet), clamped
        to [1, 120] seconds."""
        hist = self.registry.histogram("service.job_exec_us", LATENCY_BUCKETS_US)
        mean_s = (hist.mean / 1e6) if hist.count else 1.0
        mean_s = max(mean_s, 0.001)
        depth = len(self._pending) + self._inflight + 1
        estimate = math.ceil(depth * mean_s / max(1, self.workers))
        return max(RETRY_AFTER_MIN, min(RETRY_AFTER_MAX, estimate))

    def _reject(self, status: int, message: str, reason: str,
                **fields) -> None:
        """Refuse a submission with a structured, Retry-After-bearing
        429/503 and count it."""
        self.registry.counter("service.rejected_total").add(1)
        self._rejected[reason] = self._rejected.get(reason, 0) + 1
        retry = self._retry_after()
        raise HttpError(
            status,
            message,
            headers={"Retry-After": str(retry)},
            reason=reason,
            retry_after=retry,
            **fields,
        )

    def _breaker_state(self) -> str:
        if self._breaker_opened_monotonic is None:
            return "closed"
        if (
            time.monotonic() - self._breaker_opened_monotonic
            >= self.breaker_cooldown
        ):
            return "half-open"
        return "open"

    def _memo_only_reason(self) -> Optional[str]:
        """Why cold work is currently refused (None = full service).
        ``degraded`` is operator-forced; ``lease`` means another daemon
        holds the store's writer lease; ``breaker`` means K consecutive
        job-subprocess failures tripped it (after the cooldown the
        breaker goes half-open and cold probes are admitted — a probe
        success closes it, a failure re-opens it)."""
        if self.degraded:
            return "degraded"
        if self.use_lease and self._lease is not None and not self._lease_held:
            return "lease"
        if self._breaker_state() == "open":
            return "breaker"
        return None

    def _note_job_outcome(self, job: dict, failure_kind: Optional[str]) -> None:
        """Breaker accounting for one finished job.  Only cold-path
        subprocess outcomes count: memo-only jobs don't exercise the
        failing path, and deadline/drain/lease outcomes are
        administrative, not evidence of a broken worker path."""
        if job.get("memo_only"):
            return
        if failure_kind is None:
            self._breaker_consecutive = 0
            if self._breaker_opened_monotonic is not None:
                self._breaker_opened_monotonic = None
                self.registry.gauge("service.breaker_open").set(0)
            return
        if failure_kind not in ("error", "worker-death", "fault"):
            return
        self._breaker_consecutive += 1
        if (
            self.breaker_threshold > 0
            and self._breaker_consecutive >= self.breaker_threshold
        ):
            if self._breaker_opened_monotonic is None:
                self.registry.counter("service.breaker_trips").add(1)
            # (re)open — a failed half-open probe lands here too and
            # restarts the cooldown
            self._breaker_opened_monotonic = time.monotonic()
            self.registry.gauge("service.breaker_open").set(1)

    def _all_cells_warm(self, suite, profiles, dispatch) -> bool:
        """Memo-only admission check: is every cell of this submission
        already on record?"""
        from ..store import cell_key

        keys = [
            cell_key(name, p.name, overrides=params or None, dispatch=dispatch)
            for name, params in suite
            for p in profiles
        ]
        with self._read_store() as store:
            return all(store.has_live(key) for key in keys)

    # -------------------------------------------------------- chaos faults

    def _service_fault_site(self, job_id: int) -> Optional[str]:
        if self.fault_plan is None:
            return None
        site = self.fault_plan.service_fault(job_id)
        if site is not None:
            self.registry.counter("service.fault_injections").add(1)
        return site

    def _chaos_steal_lease(self, job_id: int) -> None:
        """lease-steal fault site: a rival writer forcibly takes the
        lease (short TTL, so this daemon re-acquires soon after) — the
        in-flight job's fenced append must abort with lease-lost."""
        from ..store import WriterLease

        ttl = min(1.0, self.lease_ttl / 4.0)
        with WriterLease(
            self.store_path, holder=f"chaos-thief-{job_id}", ttl=ttl
        ) as thief:
            thief.steal()

    def _chaos_hold_store(self, seconds: float) -> None:
        """store-lock-contention fault site: a rival writer holds BEGIN
        IMMEDIATE on the store — the job must ride it out through busy
        timeouts, not fail.  The rival runs in its own *process*, not a
        daemon thread: the job subprocess forks from this process, and a
        fork taken while a local connection holds the WAL write lock
        copies SQLite's per-process inode lock state into the child,
        which then sees a phantom local writer forever.  Blocks (briefly)
        until the rival holds the lock, so the injection happens-before
        the job starts."""
        from ..parallel.pool import _pool_context

        ctx = _pool_context()
        acquired = ctx.Event()
        proc = ctx.Process(
            target=_hold_store_lock,
            args=(self.store_path, seconds, acquired),
            daemon=True,
        )
        proc.start()
        acquired.wait(5.0)

    # ------------------------------------------------------------- job queue

    def _refresh_gauges(self) -> None:
        self.registry.gauge("service.queue_depth").set(self._queue.qsize())
        self.registry.gauge("service.inflight").set(self._inflight)

    def _submit(self, request: dict, ctx=NULL_CONTEXT) -> dict:
        from ..metrics import baseline
        from ..vm.dispatch import DISPATCH_MODES

        if request.get("plan") or request.get("faults"):
            raise HttpError(
                409,
                "the service does not accept fault plans: memoized results "
                "must stay perturbation-free (run repro-chaos directly)",
            )
        scale = request.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool):
            raise HttpError(400, f"bad scale {scale!r}")
        dispatch = request.get("dispatch")
        if dispatch is None:
            dispatch = self.default_dispatch
        if dispatch is not None and dispatch not in DISPATCH_MODES:
            raise HttpError(
                400, f"bad dispatch {dispatch!r} (known: {', '.join(DISPATCH_MODES)})"
            )
        try:
            profiles = baseline.resolve_profiles(request.get("profiles"))
            suite = baseline.resolve_suite(request.get("benchmarks"), float(scale))
        except ValueError as exc:
            raise HttpError(400, str(exc))
        deadline = request.get("deadline")
        if deadline is not None:
            if (
                not isinstance(deadline, (int, float))
                or isinstance(deadline, bool)
                or float(deadline) <= 0
            ):
                raise HttpError(400, f"bad deadline {deadline!r}")
            # client-overridable but capped: the service default (when
            # set) is the ceiling, else the global cap
            deadline = min(float(deadline), self.deadline_cap)
        else:
            deadline = self.job_deadline
        # admission control happens before the job exists, so rejected
        # submissions never leave a job record behind
        if self._draining:
            self._reject(
                503,
                "daemon is draining: no new submissions are admitted",
                "draining",
            )
        coalesce_key = _coalesce_key(
            suite, profiles, dispatch, request.get("git_sha")
        )
        primary = self._jobs.get(self._inflight_keys.get(coalesce_key, -1))
        coalesces = (
            primary is not None and primary["status"] in ("queued", "running")
        )
        memo_only = False
        if not coalesces:
            reason = self._memo_only_reason()
            if reason is not None:
                if self._all_cells_warm(suite, profiles, dispatch):
                    memo_only = True  # warm submissions still serve
                else:
                    self._reject(
                        503,
                        f"daemon is memo-only ({reason}): this submission "
                        "has cold cells and cold work is refused",
                        reason,
                        memo_only=True,
                    )
            if (
                self.max_queue is not None
                and len(self._pending) >= self.max_queue
            ):
                self._reject(
                    429,
                    f"job queue is full ({len(self._pending)}/"
                    f"{self.max_queue} queued)",
                    "queue_full",
                    queue_depth=len(self._pending),
                    max_queue=self.max_queue,
                )
        job = {
            "id": self._next_job,
            "status": "queued",
            "created_unix": time.time(),
            "request": {
                "benchmarks": [name for name, _params in suite],
                "profiles": [p.name for p in profiles],
                "scale": float(scale),
                "dispatch": dispatch,
                "git_sha": request.get("git_sha"),
            },
            "stats": None,
            "error": None,
            # wall-clock lifecycle stamps: unix pairs for display,
            # monotonic pairs for durations (immune to clock steps)
            "submitted_monotonic": time.monotonic(),
            "started_unix": None,
            "started_monotonic": None,
            "finished_unix": None,
            "finished_monotonic": None,
            # submission's trace: job spans are parented under the
            # submitting request's http.request span
            "trace_id": ctx.trace_id,
            "submit_span": ctx.span_id,
            "coalesce_key": coalesce_key,
            "coalesced_with": None,
            "followers": [],
            "deadline_seconds": deadline,
            "memo_only": memo_only,
            "failure": None,
            "fault_site": None,
            # drain sets this; the shepherd thread polls it between pipe
            # polls and kills the job's subprocess group when set
            "_cancel": threading.Event(),
        }
        self._next_job += 1
        self._jobs[job["id"]] = job
        if coalesces:
            # identical in-flight submission: attach, don't re-execute
            job["coalesced_with"] = primary["id"]
            primary["followers"].append(job["id"])
            if primary["status"] == "running":
                self._mark_running(job, time.monotonic())
            self.registry.counter("service.coalesced_total").add(1)
            if job["trace_id"] is not None:
                self._job_context(job).event(
                    "job.coalesced", job=job["id"], primary=primary["id"]
                )
        else:
            self._inflight_keys[job["coalesce_key"]] = job["id"]
            self._pending.append(job["id"])
            self._queue.put_nowait(job["id"])
        self.registry.counter("service.jobs").add(1)
        self._refresh_gauges()
        return job

    @staticmethod
    def _mark_running(job: dict, now: float) -> None:
        job["status"] = "running"
        job["started_unix"] = time.time()
        job["started_monotonic"] = now

    def _job_context(self, job: dict) -> TraceContext:
        """The trace position job-lifecycle spans hang off — the submit
        request's span when the submission carried one."""
        if job.get("trace_id") is None:
            return self.tracer.context()
        return self.tracer.context(
            trace_id=job["trace_id"], parent_id=job["submit_span"]
        )

    def _job_config(self, job: dict, ctx) -> dict:
        """Everything the worker subprocess needs, as plain data — plus
        the shepherd-only ``_``-prefixed keys the executor thread strips
        before the child sees the config."""
        config = {
            "request": dict(job["request"]),
            "store_path": self.store_path,
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "use_compile_cache": self.use_compile_cache,
            "trace_id": job["trace_id"],
            "parent_span": getattr(ctx, "span_id", None),
            "memo_only": bool(job.get("memo_only")),
            "lease": (
                {"holder": self._lease.holder, "token": self._lease.token}
                if self._lease is not None
                and self._lease_held
                and self._lease.token is not None
                else None
            ),
            "_cancel": job.get("_cancel"),
            "_kill_at_start": job.get("fault_site") == "job_kill",
        }
        if job.get("deadline_seconds") is not None:
            config["_deadline"] = (
                time.monotonic() + float(job["deadline_seconds"])
            )
        return config

    def _absorb_result(self, job: dict, payload: dict, span) -> None:
        """Fold one worker payload into daemon state (event-loop thread):
        adopt the worker's spans, stats and artifact, accumulate the
        daemon-owned compile totals, bump the service counters."""
        for data in payload.get("spans", ()):
            self.tracer.ingest(Span.from_dict(data))
        stats = payload["stats"]
        job["stats"] = stats
        job["artifact"] = payload["artifact"]
        span.set(
            cells=stats["cells"],
            hits=stats["hits"],
            compile_calls=stats["compile_calls"],
        )
        self._compile_totals["compile_source_calls"] += stats["compile_calls"]
        self.registry.counter("service.cells").add(stats["cells"])
        self.registry.counter("service.cache_hits").add(stats["hits"])
        self.registry.counter("service.cache_misses").add(stats["misses"])
        self.registry.counter("service.cells_executed").add(
            stats["cells_executed"]
        )

    def _resolve_followers(self, job: dict) -> None:
        """Propagate a finished primary to its coalesced followers: same
        artifact and timestamps, but zero compiles and zero executed
        cells of their own — they are served entirely from the primary's
        execution."""
        for follower_id in job["followers"]:
            follower = self._jobs[follower_id]
            follower["status"] = job["status"]
            follower["finished_unix"] = job["finished_unix"]
            follower["finished_monotonic"] = job["finished_monotonic"]
            if job["status"] == "done":
                follower["artifact"] = job["artifact"]
                stats = dict(job["stats"])
                stats["hits"] = stats["cells"]
                stats["misses"] = 0
                stats["compile_calls"] = 0
                stats["cells_executed"] = 0
                follower["stats"] = stats
            else:
                follower["error"] = (
                    f"coalesced with job {job['id']}, which failed: "
                    f"{job['error']}"
                )

    async def _drain_jobs(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job_id = await self._queue.get()
            job = self._jobs[job_id]
            if job["status"] != "queued":
                continue  # shed while queued (drain) — already resolved
            try:
                self._pending.remove(job_id)
            except ValueError:
                pass
            job["fault_site"] = self._service_fault_site(job_id)
            now = time.monotonic()
            queue_wait = now - job["submitted_monotonic"]
            self._mark_running(job, now)
            for follower_id in job["followers"]:
                self._mark_running(self._jobs[follower_id], now)
            self._inflight += 1
            self._refresh_gauges()
            ctx = self._job_context(job)
            ctx.record(
                "job.queue_wait",
                t0=job["submitted_monotonic"],
                dur=queue_wait,
                job=job["id"],
                track="queue",
            )
            self.registry.histogram(
                "service.job_queue_wait_us", LATENCY_BUCKETS_US
            ).observe(queue_wait * 1e6)
            try:
                # chaos injections fire just before execution, keyed by
                # job id through the seeded plan (determinism contract)
                if job["fault_site"] == "lease_steal":
                    await loop.run_in_executor(
                        None, self._chaos_steal_lease, job["id"]
                    )
                elif job["fault_site"] == "store_contention":
                    hold = 0.05 * (
                        1 + self.fault_plan.service_param(job["id"])
                    )
                    await loop.run_in_executor(
                        None, self._chaos_hold_store, hold
                    )
                with ctx.child(
                    "job.execute", job=job["id"], track="executor"
                ) as span:
                    payload = await loop.run_in_executor(
                        self._executor,
                        _run_job_subprocess,
                        self._job_config(job, span),
                    )
                    self._absorb_result(job, payload, span)
                job["status"] = "done"
                self._note_job_outcome(job, None)
            except _JobKilled as exc:
                job["status"] = "failed"
                job["error"] = str(exc)
                kind = "worker-death" if exc.kind == "fault" else exc.kind
                job["failure"] = {"kind": kind, "detail": str(exc)}
                if exc.kind == "deadline":
                    job["failure"]["deadline_seconds"] = job["deadline_seconds"]
                    self.registry.counter("service.deadline_kills").add(1)
                if job["fault_site"] is not None:
                    job["failure"]["fault"] = job["fault_site"]
                ctx.event(
                    "job.killed", job=job["id"], kind=exc.kind,
                    fault=job["fault_site"],
                )
                self.registry.counter("service.job_failures").add(1)
                # deadline/drain kills are administrative and don't touch
                # the breaker; a chaos "fault" kill maps to worker-death,
                # which does — that's how chaos exercises the breaker
                self._note_job_outcome(job, kind)
            except Exception as exc:  # noqa: BLE001 — job isolation boundary
                job["status"] = "failed"
                job["error"] = (
                    str(exc)
                    if isinstance(exc, _RemoteJobError)
                    else f"{type(exc).__name__}: {exc}"
                )
                kind = getattr(exc, "kind", "error")
                job["failure"] = {"kind": kind, "detail": job["error"]}
                if job["fault_site"] is not None:
                    job["failure"]["fault"] = job["fault_site"]
                if kind == "lease-lost":
                    self._note_lease_lost(job["error"])
                self.registry.counter("service.job_failures").add(1)
                self._note_job_outcome(job, kind)
            finally:
                job["finished_unix"] = time.time()
                job["finished_monotonic"] = time.monotonic()
                self._inflight -= 1
                if self._inflight_keys.get(job["coalesce_key"]) == job["id"]:
                    del self._inflight_keys[job["coalesce_key"]]
                self._resolve_followers(job)
                self._refresh_gauges()
                self.registry.histogram(
                    "service.job_exec_us", LATENCY_BUCKETS_US
                ).observe(
                    (job["finished_monotonic"] - job["started_monotonic"])
                    * 1e6
                )

    # ---------------------------------------------------------------- routes

    def _job_view(self, job: dict) -> dict:
        queue_wait = run = None
        if job["started_monotonic"] is not None:
            queue_wait = job["started_monotonic"] - job["submitted_monotonic"]
            end = (
                job["finished_monotonic"]
                if job["finished_monotonic"] is not None
                else time.monotonic()
            )
            run = end - job["started_monotonic"]
        # position comes from actual queue membership, not a status scan:
        # failed/stale entries and concurrently-dequeued jobs never shift
        # it, and coalesced followers (which are "queued" but never
        # enqueued) report no position at all
        position = None
        if job["status"] == "queued" and job["coalesced_with"] is None:
            try:
                position = self._pending.index(job["id"]) + 1
            except ValueError:
                position = None
        return {
            "id": job["id"],
            "status": job["status"],
            "created_unix": job["created_unix"],
            "submitted_at": job["created_unix"],
            "started_at": job["started_unix"],
            "finished_at": job["finished_unix"],
            "queue_wait_seconds": queue_wait,
            "run_seconds": run,
            "queue_position": position,
            "trace_id": job["trace_id"],
            "coalesced_with": job["coalesced_with"],
            "followers": list(job["followers"]),
            "request": job["request"],
            "stats": job["stats"],
            "error": job["error"],
            "failure": job.get("failure"),
            "deadline_seconds": job.get("deadline_seconds"),
            "memo_only": bool(job.get("memo_only")),
            "fault_site": job.get("fault_site"),
        }

    def _get_job(self, job_id: str) -> dict:
        try:
            job = self._jobs[int(job_id)]
        except (KeyError, ValueError):
            raise HttpError(404, f"no job {job_id!r}")
        return job

    def _read_store(self):
        """A read connection for query endpoints — pooled when the daemon
        is started, a throwaway writer-capable one otherwise (tests poke
        handlers on unstarted instances)."""
        if self._read_pool is not None:
            return self._read_pool.connection()
        from ..store import ExperimentStore

        return ExperimentStore(self.store_path)

    def _handle(self, request: Request, ctx=NULL_CONTEXT):
        """Route one request; returns ``(status, payload)`` or
        ``(status, payload, content_type)`` for non-JSON bodies."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            from ..store import SCHEMA_VERSION

            return 200, {
                "ok": True,
                "store": self.store_path,
                "schema_version": SCHEMA_VERSION,
                "workers": self.workers,
                "draining": self._draining,
                "memo_only": self._memo_only_reason(),
            }
        if path == "/metrics" and method == "GET":
            self._refresh_gauges()
            return 200, render_exposition(self.registry), EXPOSITION_CONTENT_TYPE
        if path == "/v1/jobs" and method == "POST":
            job = self._submit(request.json(), ctx)
            return 202, self._job_view(job)
        if path == "/v1/jobs" and method == "GET":
            return 200, {
                "jobs": [self._job_view(j) for j in self._jobs.values()]
            }
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/result"):
                job = self._get_job(rest[: -len("/result")])
                if job["status"] == "failed":
                    failure = job.get("failure") or {}
                    if failure.get("kind") in ("shed", "drain"):
                        # shed/drained work was refused, not broken:
                        # resubmit elsewhere (or later) — 503, structured
                        raise HttpError(
                            503,
                            job["error"] or "job shed",
                            headers={"Retry-After": str(self._retry_after())},
                            failure=failure,
                        )
                    extra = {"failure": failure} if failure else {}
                    raise HttpError(
                        409, job["error"] or "job failed", **extra
                    )
                if job["status"] != "done":
                    raise HttpError(404, f"job {job['id']} is {job['status']}")
                return 200, job["artifact"]
            return 200, self._job_view(self._get_job(rest))
        if path == "/v1/traces" and method == "GET":
            return 200, {"traces": self.tracer.trace_ids()}
        if path.startswith("/v1/traces/") and method == "GET":
            trace_id = path[len("/v1/traces/"):]
            spans = self.tracer.snapshot(trace_id)
            if not spans:
                raise HttpError(404, f"no trace {trace_id!r}")
            return 200, {
                "trace": trace_id,
                "spans": [s.to_dict() for s in spans],
            }
        if path == "/v1/stats" and method == "GET":
            with self._read_store() as store:
                counts = store.counts()
            self._refresh_gauges()
            by_status = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_status[job["status"]] += 1
            return 200, {
                "metrics": self.registry.snapshot(),
                # daemon-owned accumulated per-job deltas — never a
                # snapshot of a live process-global mid-execution
                "compile_stats": dict(self._compile_totals),
                "store": counts,
                "swept_tmp_files": self.swept_tmp_files,
                "queue_depth": self._queue.qsize(),
                "inflight": self._inflight,
                "workers": self.workers,
                "journal_mode": self.journal_mode,
                "coalesced_total": self.registry.value(
                    "service.coalesced_total"
                ),
                "read_pool": (
                    None if self._read_pool is None
                    else self._read_pool.stats()
                ),
                "jobs": by_status,
                "admission": {
                    "max_queue": self.max_queue,
                    "draining": self._draining,
                    "memo_only": self._memo_only_reason(),
                    "rejected_total": self.registry.value(
                        "service.rejected_total"
                    ),
                    "rejected": dict(self._rejected),
                    "shed_total": self.registry.value("service.shed_total"),
                    "retry_after_seconds": self._retry_after(),
                },
                "breaker": {
                    "state": self._breaker_state(),
                    "consecutive_failures": self._breaker_consecutive,
                    "threshold": self.breaker_threshold,
                    "cooldown_seconds": self.breaker_cooldown,
                    "trips": self.registry.value("service.breaker_trips"),
                },
                "deadline": {
                    "default_seconds": self.job_deadline,
                    "cap_seconds": self.deadline_cap,
                    "kills": self.registry.value("service.deadline_kills"),
                },
                "lease": (
                    None
                    if self._lease is None
                    else {
                        "held": self._lease_held,
                        "holder": self.holder_id,
                        "token": self._lease.token,
                        "ttl_seconds": self.lease_ttl,
                        "lost_total": self.registry.value(
                            "service.lease_lost_total"
                        ),
                        "row": self._lease.info(),
                    }
                ),
                "uptime_seconds": (
                    time.monotonic() - self._started_monotonic
                    if self._started_monotonic is not None
                    else None
                ),
                "trace": {
                    "buffered_spans": len(self.tracer.snapshot()),
                    "dropped_spans": self.tracer.dropped,
                    "log": (
                        self._trace_sink.path
                        if self._trace_sink is not None
                        else None
                    ),
                },
            }
        if path == "/v1/trends" and method == "GET":
            with self._read_store() as store:
                if "metric" in request.query:
                    rows = store.metric_trend(
                        request.query["metric"],
                        benchmark=request.query.get("benchmark"),
                    )
                else:
                    rows = store.trend(
                        benchmark=request.query.get("benchmark"),
                        profile=request.query.get("profile"),
                        ratio_base=request.query.get("ratio_base"),
                    )
            return 200, {"rows": rows}
        if path == "/v1/admin/gc" and method == "POST":
            cache = self._cache()
            reaped = 0 if cache is None else cache.sweep()
            self.swept_tmp_files += reaped
            self.registry.counter("service.gc_runs").add(1)
            return 200, {
                "reaped_tmp_files": reaped,
                "cache_dir": None if cache is None else cache.root,
            }
        raise HttpError(404, f"no route {method} {request.path}")

    async def _serve_one(self, reader, writer) -> None:
        """One connection: serve requests until the peer closes or a
        request declines keep-alive (the default)."""
        self.registry.counter("service.http_connections").add(1)
        self._connections.add(writer)
        try:
            while await self._serve_request(reader, writer):
                pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _serve_request(self, reader, writer) -> bool:
        """Serve one request off the connection; returns True when the
        connection should be kept open for another."""
        t_request = time.monotonic()
        status, payload, content_type = 500, {"error": "internal error"}, None
        extra_headers: Dict[str, str] = {}
        request: Optional[Request] = None
        trace_id = parent = None
        try:
            request = await read_request(reader)
        except HttpError as exc:
            status, payload = exc.status, exc.payload()
            extra_headers = exc.headers
        else:
            if request is None:
                return False  # clean EOF between requests
            trace_id, parent = parse_trace_header(
                request.headers.get(TRACE_HEADER)
            )
        # every response — including protocol errors — carries a trace:
        # the http.request span roots the submission's tree (or is the
        # client's child when the header named a parent span)
        trace_id = trace_id or new_trace_id()
        request_span = new_span_id()
        ctx = TraceContext(self.tracer, trace_id, request_span)
        # keep-alive is strictly opt-in (pooled clients ask for it);
        # protocol errors always close
        keep_alive = request is not None and request.wants_keep_alive()
        if request is not None:
            try:
                result = self._handle(request, ctx)
                status, payload = result[0], result[1]
                content_type = result[2] if len(result) > 2 else None
            except HttpError as exc:
                status, payload = exc.status, exc.payload()
                extra_headers = exc.headers
            except Exception as exc:  # noqa: BLE001 — keep the daemon alive
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        response_headers = {
            "X-Repro-Trace": format_trace_header(trace_id, request_span)
        }
        response_headers.update(extra_headers)
        try:
            writer.write(
                format_response(
                    status,
                    payload,
                    content_type=content_type,
                    headers=response_headers,
                    keep_alive=keep_alive,
                )
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            # client went away mid-response; the daemon shrugs
            self.registry.counter("service.client_disconnects").add(1)
            keep_alive = False
        finally:
            now = time.monotonic()
            attrs = {"status": status, "track": "http"}
            if request is not None:
                attrs["method"] = request.method
                attrs["path"] = request.path
            self.tracer.record(
                "http.request",
                trace_id,
                parent_id=parent,
                t0=t_request,
                dur=now - t_request,
                attrs=attrs,
                span_id=request_span,
            )
            self.registry.counter("service.http_requests").add(1)
            if status >= 400:
                self.registry.counter("service.http_errors").add(1)
            self.registry.histogram(
                "service.http_latency_us", LATENCY_BUCKETS_US
            ).observe((now - t_request) * 1e6)
        return keep_alive


def write_port_file(path: str, port: int) -> None:
    """Atomically publish the bound port for readiness polling (CI).

    PID-unique temp name (two daemons racing on one path never clobber
    each other's tmp), fsync before rename so a reader that sees the file
    never sees a torn write.
    """
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        handle.write(f"{port}\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
