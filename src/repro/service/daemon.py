"""The experiment daemon: benchmark-as-a-service over the result store.

An :class:`ExperimentService` owns one SQLite experiment store and a job
queue.  Submitted jobs are (benchmarks x profiles) matrices; each job
runs through :func:`repro.metrics.baseline.collect` with the store
attached, so cells already on record are **served** (zero compiles, zero
guest cycles — the memo key is content-addressed on compiler version,
profile, benchmark, canonical overrides and dispatch engine) and only
novel cells execute, through the same resilient pool every CLI uses.
The returned artifact is byte-identical to a direct serial run: that is
the daemon-vs-direct identity invariant the test suite pins.

Everything is standard library: asyncio sockets, hand-rolled HTTP/1.1
framing (:mod:`repro.service.http`), ``sqlite3`` underneath.  Jobs
execute one at a time in a thread-pool executor — the experiment matrix
itself parallelizes via ``--jobs``, not via concurrent collections
(which would interleave COMPILE_STATS accounting and compile-cache
writes).
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Dict, Optional

from ..metrics.registry import MetricsRegistry
from .http import HttpError, Request, format_response, read_request

#: job lifecycle: queued -> running -> done | failed
JOB_STATES = ("queued", "running", "done", "failed")


class ExperimentService:
    """One daemon instance: an HTTP front end over a store-backed queue."""

    def __init__(
        self,
        store_path: Optional[str] = None,
        *,
        jobs=None,
        cache_dir: Optional[str] = None,
        use_compile_cache: bool = True,
        default_dispatch: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        from ..store import default_store_path

        self.store_path = store_path or default_store_path()
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.use_compile_cache = use_compile_cache
        self.default_dispatch = default_dispatch
        self.registry = registry if registry is not None else MetricsRegistry()
        self._jobs: Dict[int, dict] = {}
        self._next_job = 1
        self._queue: asyncio.Queue = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker: Optional[asyncio.Task] = None
        self.swept_tmp_files = 0

    # ------------------------------------------------------------- lifecycle

    def _cache(self):
        if not self.use_compile_cache:
            return None
        from ..parallel import CompileCache

        return CompileCache(self.cache_dir)

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the listener (port 0 = ephemeral), run startup GC, apply
        store migrations, and start the queue worker."""
        cache = self._cache()
        if cache is not None:
            # reap compile-cache temp files orphaned by previously killed
            # writers, so a crashed run never bloats the daemon's cache
            self.swept_tmp_files = cache.sweep()
        from ..store import ExperimentStore

        ExperimentStore(self.store_path).close()  # create / migrate up front
        self._server = await asyncio.start_server(self._serve_one, host, port)
        self._worker = asyncio.ensure_future(self._drain_jobs())

    @property
    def address(self):
        """``(host, port)`` actually bound (resolves port 0)."""
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("service not started")
        await self._server.serve_forever()

    # ------------------------------------------------------------- job queue

    def _submit(self, request: dict) -> dict:
        from ..metrics import baseline
        from ..vm.dispatch import DISPATCH_MODES

        if request.get("plan") or request.get("faults"):
            raise HttpError(
                409,
                "the service does not accept fault plans: memoized results "
                "must stay perturbation-free (run repro-chaos directly)",
            )
        scale = request.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool):
            raise HttpError(400, f"bad scale {scale!r}")
        dispatch = request.get("dispatch")
        if dispatch is None:
            dispatch = self.default_dispatch
        if dispatch is not None and dispatch not in DISPATCH_MODES:
            raise HttpError(
                400, f"bad dispatch {dispatch!r} (known: {', '.join(DISPATCH_MODES)})"
            )
        try:
            profiles = baseline.resolve_profiles(request.get("profiles"))
            suite = baseline.resolve_suite(request.get("benchmarks"), float(scale))
        except ValueError as exc:
            raise HttpError(400, str(exc))
        job = {
            "id": self._next_job,
            "status": "queued",
            "created_unix": time.time(),
            "request": {
                "benchmarks": [name for name, _params in suite],
                "profiles": [p.name for p in profiles],
                "scale": float(scale),
                "dispatch": dispatch,
                "git_sha": request.get("git_sha"),
            },
            "stats": None,
            "error": None,
        }
        self._next_job += 1
        self._jobs[job["id"]] = job
        self._queue.put_nowait(job["id"])
        self.registry.counter("service.jobs").add(1)
        return job

    async def _drain_jobs(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job_id = await self._queue.get()
            job = self._jobs[job_id]
            job["status"] = "running"
            try:
                await loop.run_in_executor(None, self._execute_job, job)
                job["status"] = "done"
            except Exception as exc:  # noqa: BLE001 — job isolation boundary
                job["status"] = "failed"
                job["error"] = f"{type(exc).__name__}: {exc}"
                self.registry.counter("service.job_failures").add(1)

    def _execute_job(self, job: dict) -> None:
        """Blocking body of one job — runs on the executor thread with its
        own store connection (sqlite3 objects are thread-bound)."""
        from ..lang.compiler import COMPILE_STATS
        from ..metrics import baseline
        from ..store import ExperimentStore

        request = job["request"]
        profiles = baseline.resolve_profiles(request["profiles"])
        suite = baseline.resolve_suite(request["benchmarks"], request["scale"])
        compiles_before = COMPILE_STATS["compile_source_calls"]
        with ExperimentStore(self.store_path) as store:
            artifact = baseline.collect(
                profiles=profiles,
                suite=suite,
                scale=request["scale"],
                git_sha=request["git_sha"],
                jobs=self.jobs,
                cache=self._cache(),
                dispatch=request["dispatch"],
                store=store,
            )
        stats = dict(baseline.collect.last_store)
        stats["compile_calls"] = (
            COMPILE_STATS["compile_source_calls"] - compiles_before
        )
        stats["cells_executed"] = stats["cells"] - stats["hits"]
        job["stats"] = stats
        job["artifact"] = artifact
        self.registry.counter("service.cells").add(stats["cells"])
        self.registry.counter("service.cache_hits").add(stats["hits"])
        self.registry.counter("service.cache_misses").add(stats["misses"])
        self.registry.counter("service.cells_executed").add(
            stats["cells_executed"]
        )

    # ---------------------------------------------------------------- routes

    def _job_view(self, job: dict) -> dict:
        return {
            "id": job["id"],
            "status": job["status"],
            "created_unix": job["created_unix"],
            "request": job["request"],
            "stats": job["stats"],
            "error": job["error"],
        }

    def _get_job(self, job_id: str) -> dict:
        try:
            job = self._jobs[int(job_id)]
        except (KeyError, ValueError):
            raise HttpError(404, f"no job {job_id!r}")
        return job

    def _handle(self, request: Request):
        """Route one request; returns ``(status, payload)``."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            from ..store import SCHEMA_VERSION

            return 200, {
                "ok": True,
                "store": self.store_path,
                "schema_version": SCHEMA_VERSION,
            }
        if path == "/v1/jobs" and method == "POST":
            job = self._submit(request.json())
            return 202, self._job_view(job)
        if path == "/v1/jobs" and method == "GET":
            return 200, {
                "jobs": [self._job_view(j) for j in self._jobs.values()]
            }
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/result"):
                job = self._get_job(rest[: -len("/result")])
                if job["status"] == "failed":
                    raise HttpError(409, job["error"] or "job failed")
                if job["status"] != "done":
                    raise HttpError(404, f"job {job['id']} is {job['status']}")
                return 200, job["artifact"]
            return 200, self._job_view(self._get_job(rest))
        if path == "/v1/stats" and method == "GET":
            from ..lang.compiler import COMPILE_STATS
            from ..store import ExperimentStore

            with ExperimentStore(self.store_path) as store:
                counts = store.counts()
            return 200, {
                "metrics": self.registry.snapshot(),
                "compile_stats": dict(COMPILE_STATS),
                "store": counts,
                "swept_tmp_files": self.swept_tmp_files,
                "queue_depth": self._queue.qsize(),
            }
        if path == "/v1/trends" and method == "GET":
            from ..store import ExperimentStore

            with ExperimentStore(self.store_path) as store:
                if "metric" in request.query:
                    rows = store.metric_trend(
                        request.query["metric"],
                        benchmark=request.query.get("benchmark"),
                    )
                else:
                    rows = store.trend(
                        benchmark=request.query.get("benchmark"),
                        profile=request.query.get("profile"),
                        ratio_base=request.query.get("ratio_base"),
                    )
            return 200, {"rows": rows}
        if path == "/v1/admin/gc" and method == "POST":
            cache = self._cache()
            reaped = 0 if cache is None else cache.sweep()
            self.swept_tmp_files += reaped
            self.registry.counter("service.gc_runs").add(1)
            return 200, {
                "reaped_tmp_files": reaped,
                "cache_dir": None if cache is None else cache.root,
            }
        raise HttpError(404, f"no route {method} {request.path}")

    async def _serve_one(self, reader, writer) -> None:
        status, payload = 500, {"error": "internal error"}
        try:
            request = await read_request(reader)
            if request is None:
                writer.close()
                return
            try:
                status, payload = self._handle(request)
            except HttpError as exc:
                status, payload = exc.status, {"error": exc.message}
            except Exception as exc:  # noqa: BLE001 — keep the daemon alive
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        except HttpError as exc:
            status, payload = exc.status, {"error": exc.message}
        try:
            writer.write(format_response(status, payload))
            await writer.drain()
        finally:
            writer.close()


def write_port_file(path: str, port: int) -> None:
    """Atomically publish the bound port for readiness polling (CI)."""
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        handle.write(f"{port}\n")
    os.replace(tmp, path)
