"""``ServiceClient`` — a pooled, keep-alive front end for the daemon.

Built on ``http.client`` so connections persist across requests: every
request goes out with ``Connection: keep-alive`` (the daemon's framing
keeps connections open only for clients that ask), and the client keeps
up to ``pool_size`` idle connections warm.  A polling ``wait()`` loop or
a burst of submissions therefore reuses one TCP connection instead of a
handshake per request.  The pool is thread-safe — connections beyond the
idle cap are simply closed on release — and ``created``/``reused``
counters on :meth:`pool_stats` make reuse observable in tests.  A stale
pooled connection (daemon restarted, idle timeout) is retried once on a
fresh connection before surfacing an error.

Constructed with ``trace_id=``, the client stamps every request with the
``X-Repro-Trace`` propagation header, so the daemon's ``http.request``
spans join the client's trace instead of each minting their own.  The
client sends the bare trace id (no parent span): the daemon's request
spans stay roots of the server-side tree, and the JSONL trace log never
references a span it does not contain.  ``last_trace`` holds the
``X-Repro-Trace`` value echoed on the most recent response — the handle
for fetching the server-side span tree via ``GET /v1/traces/<id>``.
Propagation is per-request: every request on a reused connection carries
the header and every response echoes it.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
import time
from typing import List, Optional, Tuple
from urllib.parse import urlsplit

from ..trace import TRACE_HEADER

#: wait()'s poll backoff: start fast, cap at 2s so N waiting clients
#: don't hammer /v1/jobs/<id> at saturation
WAIT_POLL_INITIAL = 0.1
WAIT_POLL_CAP = 2.0


class ServiceError(Exception):
    """An error response from the daemon (carries the HTTP status).

    ``retry_after`` is the parsed ``Retry-After`` header (seconds) when
    the daemon sent one (429/503 admission rejections do), and ``fields``
    carries the rest of the structured JSON error body (``reason``,
    ``failure``, ...)."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None,
                 fields: Optional[dict] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.fields = dict(fields or {})


class ServiceClient:
    """Talk to one daemon; every method returns the decoded JSON payload.

    ``max_retries > 0`` arms deterministic seeded exponential
    backoff-with-jitter on 429/503 responses: the delay honors the
    daemon's ``Retry-After`` when present (plus a small seeded jitter so
    a fleet of rejected clients doesn't return in lockstep), otherwise
    doubles from ``backoff_base``.  The jitter is ``sha256(seed,
    attempt)`` — reproducible for a given seed, desynchronized across
    seeds.  Retrying a rejected submission is safe by construction: a
    429/503 admission rejection means the job was never enqueued.
    """

    def __init__(self, url: str, timeout: float = 30.0,
                 trace_id: Optional[str] = None, pool_size: int = 2,
                 max_retries: int = 0, backoff_base: float = 0.2,
                 backoff_cap: float = 30.0, backoff_seed: int = 0):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.trace_id = trace_id
        self.pool_size = max(1, int(pool_size))
        self.max_retries = max(0, int(max_retries))
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.backoff_seed = int(backoff_seed)
        #: total 429/503 retries performed (observable in tests)
        self.retries_performed = 0
        #: requests actually sent (wait()'s poll-count regression test)
        self.requests_sent = 0
        #: X-Repro-Trace header of the last response (None before any call)
        self.last_trace: Optional[str] = None
        split = urlsplit(self.url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {url!r} (http only)")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        self._idle: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        self.created = 0
        self.reused = 0

    # ------------------------------------------------------ connection pool

    def _acquire(self) -> Tuple[http.client.HTTPConnection, bool]:
        """An open connection and whether it is freshly made (a reused one
        may be stale and earns one retry)."""
        with self._lock:
            if self._idle:
                self.reused += 1
                return self._idle.pop(), False
            self.created += 1
        return (
            http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            ),
            True,
        )

    def _release(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._idle) < self.pool_size:
                self._idle.append(conn)
                return
        conn.close()

    def close(self) -> None:
        """Close every pooled connection (the daemon drops them on stop
        anyway; this makes shutdown symmetric on the client side)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def pool_stats(self) -> dict:
        with self._lock:
            return {
                "idle": len(self._idle),
                "created": self.created,
                "reused": self.reused,
            }

    # ------------------------------------------------------------- transport

    def _roundtrip(self, method: str, path: str, body: Optional[bytes],
                   headers: dict):
        """One request/response over a pooled connection; returns
        ``(status, response_headers, payload_bytes)``.  Retries once on a
        stale pooled connection; a fresh connection's failure means the
        daemon is genuinely unreachable."""
        last_exc: Optional[Exception] = None
        for _attempt in (1, 2):
            conn, fresh = self._acquire()
            try:
                self.requests_sent += 1
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                conn.close()
                last_exc = exc
                if fresh:
                    break
                continue  # stale keep-alive connection — retry fresh
            reuse = (
                response.getheader("Connection", "").strip().lower()
                == "keep-alive"
            )
            if reuse:
                self._release(conn)
            else:
                conn.close()
            return response.status, response, data
        raise ServiceError(0, f"cannot reach {self.url}: {last_exc}")

    def _backoff_delay(self, attempt: int,
                       retry_after: Optional[float] = None) -> float:
        """Deterministic seeded exponential backoff with jitter.  Honors
        the server's ``Retry-After`` as the floor when present (plus a
        seeded jitter fraction of the base so rejected clients spread
        out); otherwise doubles from ``backoff_base``."""
        digest = hashlib.sha256(
            f"{self.backoff_seed}:{int(attempt)}".encode("utf-8")
        ).digest()
        jitter = int.from_bytes(digest[:8], "big") / float(2 ** 64)
        if retry_after is not None:
            delay = float(retry_after) + jitter * self.backoff_base
        else:
            delay = self.backoff_base * (2 ** attempt) * (0.5 + jitter)
        return min(self.backoff_cap, delay)

    def _call_once(self, method: str, path: str,
                   payload: Optional[dict] = None) -> dict:
        body = None
        headers = {"Accept": "application/json", "Connection": "keep-alive"}
        if self.trace_id:
            headers["X-Repro-Trace"] = self.trace_id
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        status, response, data = self._roundtrip(method, path, body, headers)
        self.last_trace = response.getheader(TRACE_HEADER)
        if status >= 400:
            detail = data.decode("utf-8", "replace")
            fields: dict = {}
            try:
                decoded = json.loads(detail)
                if isinstance(decoded, dict):
                    fields = decoded
                    detail = decoded.get("error", detail)
            except ValueError:
                pass
            retry_after = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
            if retry_after is None and "retry_after" in fields:
                try:
                    retry_after = float(fields["retry_after"])
                except (TypeError, ValueError):
                    pass
            raise ServiceError(
                status, detail, retry_after=retry_after, fields=fields
            )
        return json.loads(data.decode("utf-8"))

    def _call(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        """One API call, with optional 429/503 retry (``max_retries``)."""
        attempt = 0
        while True:
            try:
                return self._call_once(method, path, payload)
            except ServiceError as exc:
                if exc.status not in (429, 503) or attempt >= self.max_retries:
                    raise
                delay = self._backoff_delay(attempt, exc.retry_after)
                attempt += 1
                self.retries_performed += 1
                time.sleep(delay)

    def _call_text(self, path: str) -> str:
        """GET a text (non-JSON) endpoint — ``/metrics``."""
        headers = {"Connection": "keep-alive"}
        if self.trace_id:
            headers["X-Repro-Trace"] = self.trace_id
        status, response, data = self._roundtrip("GET", path, None, headers)
        self.last_trace = response.getheader(TRACE_HEADER)
        if status >= 400:
            raise ServiceError(status, data.decode("utf-8", "replace"))
        return data.decode("utf-8")

    # ------------------------------------------------------------------- API

    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def submit(self, request: dict) -> dict:
        """POST a job; returns the queued job view (``id``, ``status``)."""
        return self._call("POST", "/v1/jobs", request)

    def jobs(self) -> dict:
        return self._call("GET", "/v1/jobs")

    def status(self, job_id: int) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: int) -> dict:
        """The finished job's BENCH artifact (raises until it is done)."""
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def wait(self, job_id: int, timeout: float = 300.0,
             poll: float = WAIT_POLL_INITIAL,
             poll_cap: float = WAIT_POLL_CAP) -> dict:
        """Poll until the job leaves the queue; returns its final view.

        The poll interval backs off exponentially from ``poll`` to
        ``poll_cap`` (0.1s -> 2s by default): a quick job is noticed
        fast, a long-running one costs a bounded ~0.5 req/s instead of
        the old fixed-interval hammering."""
        deadline = time.monotonic() + timeout
        delay = max(0.01, float(poll))
        while True:
            job = self.status(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() > deadline:
                raise ServiceError(0, f"timed out waiting for job {job_id}")
            time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
            delay = min(poll_cap, delay * 2)

    def stats(self) -> dict:
        return self._call("GET", "/v1/stats")

    def metrics(self) -> str:
        """The Prometheus text exposition document from ``GET /metrics``."""
        return self._call_text("/metrics")

    def trace(self, trace_id: str) -> dict:
        """Server-side spans for one trace (``{"trace", "spans"}``)."""
        return self._call("GET", f"/v1/traces/{trace_id}")

    def trends(self, **query: str) -> dict:
        qs = "&".join(f"{k}={v}" for k, v in query.items() if v is not None)
        return self._call("GET", "/v1/trends" + (f"?{qs}" if qs else ""))

    def admin_gc(self) -> dict:
        return self._call("POST", "/v1/admin/gc", {})
