"""``ServiceClient`` — a pooled, keep-alive front end for the daemon.

Built on ``http.client`` so connections persist across requests: every
request goes out with ``Connection: keep-alive`` (the daemon's framing
keeps connections open only for clients that ask), and the client keeps
up to ``pool_size`` idle connections warm.  A polling ``wait()`` loop or
a burst of submissions therefore reuses one TCP connection instead of a
handshake per request.  The pool is thread-safe — connections beyond the
idle cap are simply closed on release — and ``created``/``reused``
counters on :meth:`pool_stats` make reuse observable in tests.  A stale
pooled connection (daemon restarted, idle timeout) is retried once on a
fresh connection before surfacing an error.

Constructed with ``trace_id=``, the client stamps every request with the
``X-Repro-Trace`` propagation header, so the daemon's ``http.request``
spans join the client's trace instead of each minting their own.  The
client sends the bare trace id (no parent span): the daemon's request
spans stay roots of the server-side tree, and the JSONL trace log never
references a span it does not contain.  ``last_trace`` holds the
``X-Repro-Trace`` value echoed on the most recent response — the handle
for fetching the server-side span tree via ``GET /v1/traces/<id>``.
Propagation is per-request: every request on a reused connection carries
the header and every response echoes it.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import List, Optional, Tuple
from urllib.parse import urlsplit

from ..trace import TRACE_HEADER


class ServiceError(Exception):
    """An error response from the daemon (carries the HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to one daemon; every method returns the decoded JSON payload."""

    def __init__(self, url: str, timeout: float = 30.0,
                 trace_id: Optional[str] = None, pool_size: int = 2):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.trace_id = trace_id
        self.pool_size = max(1, int(pool_size))
        #: X-Repro-Trace header of the last response (None before any call)
        self.last_trace: Optional[str] = None
        split = urlsplit(self.url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {url!r} (http only)")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        self._idle: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        self.created = 0
        self.reused = 0

    # ------------------------------------------------------ connection pool

    def _acquire(self) -> Tuple[http.client.HTTPConnection, bool]:
        """An open connection and whether it is freshly made (a reused one
        may be stale and earns one retry)."""
        with self._lock:
            if self._idle:
                self.reused += 1
                return self._idle.pop(), False
            self.created += 1
        return (
            http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            ),
            True,
        )

    def _release(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._idle) < self.pool_size:
                self._idle.append(conn)
                return
        conn.close()

    def close(self) -> None:
        """Close every pooled connection (the daemon drops them on stop
        anyway; this makes shutdown symmetric on the client side)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def pool_stats(self) -> dict:
        with self._lock:
            return {
                "idle": len(self._idle),
                "created": self.created,
                "reused": self.reused,
            }

    # ------------------------------------------------------------- transport

    def _roundtrip(self, method: str, path: str, body: Optional[bytes],
                   headers: dict):
        """One request/response over a pooled connection; returns
        ``(status, response_headers, payload_bytes)``.  Retries once on a
        stale pooled connection; a fresh connection's failure means the
        daemon is genuinely unreachable."""
        last_exc: Optional[Exception] = None
        for _attempt in (1, 2):
            conn, fresh = self._acquire()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                conn.close()
                last_exc = exc
                if fresh:
                    break
                continue  # stale keep-alive connection — retry fresh
            reuse = (
                response.getheader("Connection", "").strip().lower()
                == "keep-alive"
            )
            if reuse:
                self._release(conn)
            else:
                conn.close()
            return response.status, response, data
        raise ServiceError(0, f"cannot reach {self.url}: {last_exc}")

    def _call(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        body = None
        headers = {"Accept": "application/json", "Connection": "keep-alive"}
        if self.trace_id:
            headers["X-Repro-Trace"] = self.trace_id
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        status, response, data = self._roundtrip(method, path, body, headers)
        self.last_trace = response.getheader(TRACE_HEADER)
        if status >= 400:
            detail = data.decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(status, detail)
        return json.loads(data.decode("utf-8"))

    def _call_text(self, path: str) -> str:
        """GET a text (non-JSON) endpoint — ``/metrics``."""
        headers = {"Connection": "keep-alive"}
        if self.trace_id:
            headers["X-Repro-Trace"] = self.trace_id
        status, response, data = self._roundtrip("GET", path, None, headers)
        self.last_trace = response.getheader(TRACE_HEADER)
        if status >= 400:
            raise ServiceError(status, data.decode("utf-8", "replace"))
        return data.decode("utf-8")

    # ------------------------------------------------------------------- API

    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def submit(self, request: dict) -> dict:
        """POST a job; returns the queued job view (``id``, ``status``)."""
        return self._call("POST", "/v1/jobs", request)

    def jobs(self) -> dict:
        return self._call("GET", "/v1/jobs")

    def status(self, job_id: int) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: int) -> dict:
        """The finished job's BENCH artifact (raises until it is done)."""
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def wait(self, job_id: int, timeout: float = 300.0, poll: float = 0.2) -> dict:
        """Poll until the job leaves the queue; returns its final view."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() > deadline:
                raise ServiceError(0, f"timed out waiting for job {job_id}")
            time.sleep(poll)

    def stats(self) -> dict:
        return self._call("GET", "/v1/stats")

    def metrics(self) -> str:
        """The Prometheus text exposition document from ``GET /metrics``."""
        return self._call_text("/metrics")

    def trace(self, trace_id: str) -> dict:
        """Server-side spans for one trace (``{"trace", "spans"}``)."""
        return self._call("GET", f"/v1/traces/{trace_id}")

    def trends(self, **query: str) -> dict:
        qs = "&".join(f"{k}={v}" for k, v in query.items() if v is not None)
        return self._call("GET", "/v1/trends" + (f"?{qs}" if qs else ""))

    def admin_gc(self) -> dict:
        return self._call("POST", "/v1/admin/gc", {})
