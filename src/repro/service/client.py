"""``ServiceClient`` — a urllib front end for the experiment daemon.

Constructed with ``trace_id=``, the client stamps every request with the
``X-Repro-Trace`` propagation header, so the daemon's ``http.request``
spans join the client's trace instead of each minting their own.  The
client sends the bare trace id (no parent span): the daemon's request
spans stay roots of the server-side tree, and the JSONL trace log never
references a span it does not contain.  ``last_trace`` holds the
``X-Repro-Trace`` value echoed on the most recent response — the handle
for fetching the server-side span tree via ``GET /v1/traces/<id>``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from ..trace import TRACE_HEADER


class ServiceError(Exception):
    """An error response from the daemon (carries the HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to one daemon; every method returns the decoded JSON payload."""

    def __init__(self, url: str, timeout: float = 30.0,
                 trace_id: Optional[str] = None):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.trace_id = trace_id
        #: X-Repro-Trace header of the last response (None before any call)
        self.last_trace: Optional[str] = None

    def _call(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if self.trace_id:
            headers["X-Repro-Trace"] = self.trace_id
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                self.last_trace = response.headers.get(TRACE_HEADER)
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            self.last_trace = exc.headers.get(TRACE_HEADER)
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(exc.code, detail)
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.url}: {exc.reason}")

    def _call_text(self, path: str) -> str:
        """GET a text (non-JSON) endpoint — ``/metrics``."""
        headers = {}
        if self.trace_id:
            headers["X-Repro-Trace"] = self.trace_id
        request = urllib.request.Request(
            self.url + path, headers=headers, method="GET"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                self.last_trace = response.headers.get(TRACE_HEADER)
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, exc.read().decode("utf-8", "replace"))
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.url}: {exc.reason}")

    # ------------------------------------------------------------------- API

    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def submit(self, request: dict) -> dict:
        """POST a job; returns the queued job view (``id``, ``status``)."""
        return self._call("POST", "/v1/jobs", request)

    def jobs(self) -> dict:
        return self._call("GET", "/v1/jobs")

    def status(self, job_id: int) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: int) -> dict:
        """The finished job's BENCH artifact (raises until it is done)."""
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def wait(self, job_id: int, timeout: float = 300.0, poll: float = 0.2) -> dict:
        """Poll until the job leaves the queue; returns its final view."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() > deadline:
                raise ServiceError(0, f"timed out waiting for job {job_id}")
            time.sleep(poll)

    def stats(self) -> dict:
        return self._call("GET", "/v1/stats")

    def metrics(self) -> str:
        """The Prometheus text exposition document from ``GET /metrics``."""
        return self._call_text("/metrics")

    def trace(self, trace_id: str) -> dict:
        """Server-side spans for one trace (``{"trace", "spans"}``)."""
        return self._call("GET", f"/v1/traces/{trace_id}")

    def trends(self, **query: str) -> dict:
        qs = "&".join(f"{k}={v}" for k, v in query.items() if v is not None)
        return self._call("GET", "/v1/trends" + (f"?{qs}" if qs else ""))

    def admin_gc(self) -> dict:
        return self._call("POST", "/v1/admin/gc", {})
