"""``repro.service`` — benchmark-as-a-service over the experiment store.

* :mod:`repro.service.daemon` — the asyncio HTTP daemon
  (:class:`ExperimentService`): a job queue that executes novel
  experiment cells through :mod:`repro.parallel` and serves repeated
  cells straight from the SQLite store, byte-identical to a direct run.
* :mod:`repro.service.client` — :class:`ServiceClient`, the urllib
  client the ``repro-client`` CLI wraps.
* :mod:`repro.service.http` — the minimal stdlib HTTP/1.1 framing.
"""

from .client import ServiceClient, ServiceError
from .daemon import ExperimentService

__all__ = ["ExperimentService", "ServiceClient", "ServiceError"]
