"""``repro-serve`` / ``repro-client`` — the experiment service CLIs.

::

    repro-serve [--store DB] [--host H] [--port P] [--port-file PATH]
                [--trace-log LOG.jsonl] [--workers N|auto] [--jobs N|auto]
                [--max-queue N|auto] [--job-deadline S] [--degraded]
                [--breaker-threshold K] [--breaker-cooldown S]
                [--drain-grace S] [--no-lease] [--lease-ttl S]
                [--cache-dir DIR] [--no-compile-cache] [--dispatch ENGINE]
    repro-client [--url URL] [--trace[=ID]] [--retries N] submit
                --benchmarks a,b --profiles x,y [--scale S] [--dispatch E]
                [--deadline S] [--wait] [--out FILE]
    repro-client status JOB | result JOB [--out FILE]
    repro-client trends [--benchmark B] [--profile P] [--metric M]
    repro-client stats | metrics | admin gc

The daemon owns one SQLite experiment store; repeated submissions of a
matrix already on record are served from it without compiling or running
anything.  ``--workers`` executes that many jobs concurrently, each in
its own isolated subprocess (identical in-flight submissions coalesce
onto one execution); ``--jobs`` is the per-collection cell fan-out.
``--dispatch`` on the daemon sets the default engine for jobs that do
not name one.  The client deliberately refuses armed fault plans —
memoized results must stay perturbation-free.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import List, Optional

DEFAULT_URL = "http://127.0.0.1:8642"


def _dump(payload: dict) -> str:
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


# ------------------------------------------------------------------ the daemon


def serve_main(argv: Optional[List[str]] = None) -> int:
    from ..parallel import add_execution_args, execution_from_args

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="experiment daemon: submit benchmark matrices over HTTP; "
        "repeated cells are served from the SQLite result store",
    )
    parser.add_argument("--store", default=None, metavar="DB",
                        help="experiment store path (default: $REPRO_STORE "
                             "or experiments.sqlite)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="listen port; 0 binds an ephemeral port "
                             "(default: 8642)")
    parser.add_argument("--port-file", default=None, metavar="PATH",
                        help="write the bound port here once listening "
                             "(readiness signal for scripts/CI)")
    parser.add_argument("--trace-log", default=None, metavar="LOG.jsonl",
                        help="append every finished trace span to this JSONL "
                             "file (inspect with repro-trace)")
    parser.add_argument("--job-deadline", type=float, default=None, metavar="S",
                        help="default per-job wall-clock deadline in seconds; "
                             "also caps client-requested deadlines (default: "
                             "no default deadline, cap 3600s)")
    parser.add_argument("--degraded", action="store_true",
                        help="start in memo-only mode: serve warm cells from "
                             "the store, refuse cold work with 503")
    parser.add_argument("--breaker-threshold", type=int, default=5, metavar="K",
                        help="consecutive job-subprocess failures that trip "
                             "the breaker into memo-only mode (default: 5)")
    parser.add_argument("--breaker-cooldown", type=float, default=30.0,
                        metavar="S",
                        help="seconds an open breaker waits before admitting "
                             "a half-open probe job (default: 30)")
    parser.add_argument("--drain-grace", type=float, default=5.0, metavar="S",
                        help="seconds SIGTERM drain lets running jobs finish "
                             "before deadline-killing them (default: 5)")
    parser.add_argument("--no-lease", action="store_true",
                        help="skip the store writer lease (single-daemon "
                             "deployments only; concurrent writers can race)")
    parser.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                        help="writer-lease expiry in seconds (default: 15); "
                             "a dead holder is taken over after this long")
    add_execution_args(parser, include_faults=False, include_workers=True)
    args = parser.parse_args(argv)
    execution = execution_from_args(args)

    from .daemon import ExperimentService, write_port_file

    try:
        service = ExperimentService(
            args.store,
            jobs=execution.jobs,
            workers=execution.workers,
            max_queue=execution.max_queue,
            cache_dir=execution.cache_dir,
            use_compile_cache=execution.use_compile_cache,
            default_dispatch=execution.dispatch,
            trace_log=args.trace_log,
            job_deadline=args.job_deadline,
            degraded=args.degraded,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            drain_grace=args.drain_grace,
            use_lease=not args.no_lease,
            lease_ttl=args.lease_ttl,
        )
    except ValueError as exc:
        raise SystemExit(f"repro-serve: {exc}")

    async def run() -> None:
        import signal

        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop_event.set)
            loop.add_signal_handler(signal.SIGINT, stop_event.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-unix event loop: Ctrl-C still raises KeyboardInterrupt
        await service.start(args.host, args.port)
        host, port = service.address
        print(f"repro-serve: listening on http://{host}:{port} "
              f"(store {service.store_path}, workers {service.workers})",
              file=sys.stderr)
        if args.trace_log:
            print(f"repro-serve: tracing spans to {args.trace_log}",
                  file=sys.stderr)
        if service.swept_tmp_files:
            print(f"repro-serve: startup gc reaped {service.swept_tmp_files} "
                  "orphaned cache temp file(s)", file=sys.stderr)
        if args.port_file:
            write_port_file(args.port_file, port)
        serve_task = asyncio.ensure_future(service.serve_forever())
        stop_task = asyncio.ensure_future(stop_event.wait())
        try:
            await asyncio.wait(
                [serve_task, stop_task],
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for task in (serve_task, stop_task):
                task.cancel()
        if stop_event.is_set():
            print("repro-serve: signal received, draining "
                  f"(grace {args.drain_grace:g}s)", file=sys.stderr)
            await service.drain()
            print("repro-serve: drained, exiting", file=sys.stderr)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


# ------------------------------------------------------------------ the client


def _client(args):
    from ..trace import new_trace_id
    from .client import ServiceClient

    trace_id = getattr(args, "trace", None)
    if trace_id == "":  # bare --trace: mint a fresh id
        trace_id = new_trace_id()
    if trace_id:
        print(f"repro-client: trace {trace_id}", file=sys.stderr)
    return ServiceClient(
        args.url,
        trace_id=trace_id,
        max_retries=getattr(args, "retries", 0) or 0,
        backoff_seed=os.getpid(),
    )


def cmd_submit(args) -> int:
    from ..parallel import execution_from_args
    from .client import ServiceError

    execution = execution_from_args(args)
    try:
        request = execution.as_request()
    except ValueError as exc:
        raise SystemExit(f"repro-client: {exc}")
    request.update(
        benchmarks=args.benchmarks,
        profiles=args.profiles,
        scale=args.scale,
        git_sha=args.git_sha,
    )
    if args.deadline is not None:
        request["deadline"] = args.deadline
    client = _client(args)
    try:
        job = client.submit(request)
        print(f"repro-client: job {job['id']} {job['status']}", file=sys.stderr)
        if not args.wait:
            print(_dump(job), end="")
            return 0
        job = client.wait(job["id"], timeout=args.timeout)
        if job["status"] != "done":
            print(f"repro-client: job {job['id']} failed: {job['error']}",
                  file=sys.stderr)
            return 1
        stats = job["stats"]
        print(
            f"repro-client: job {job['id']} done — {stats['hits']} served / "
            f"{stats['cells_executed']} executed of {stats['cells']} cells "
            f"({stats['compile_calls']} compiles)",
            file=sys.stderr,
        )
        artifact = client.result(job["id"])
    except ServiceError as exc:
        raise SystemExit(f"repro-client: {exc}")
    blob = _dump(artifact)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(blob)
        print(f"repro-client: wrote {args.out}", file=sys.stderr)
    else:
        print(blob, end="")
    return 0


def _timing_line(job: dict) -> str:
    """One human line of the job's lifecycle timing for stderr."""
    bits = [f"job {job['id']} {job['status']}"]
    if job.get("queue_position") is not None:
        bits.append(f"queue position {job['queue_position']}")
    if job.get("coalesced_with") is not None:
        bits.append(f"coalesced with job {job['coalesced_with']}")
    if job.get("queue_wait_seconds") is not None:
        bits.append(f"queued {job['queue_wait_seconds']:.3f}s")
    if job.get("run_seconds") is not None:
        bits.append(f"ran {job['run_seconds']:.3f}s")
    if job.get("trace_id"):
        bits.append(f"trace {job['trace_id']}")
    return ", ".join(bits)


def cmd_status(args) -> int:
    from .client import ServiceError

    try:
        payload = _client(args).status(args.job)
    except ServiceError as exc:
        raise SystemExit(f"repro-client: {exc}")
    print(f"repro-client: {_timing_line(payload)}", file=sys.stderr)
    print(_dump(payload), end="")
    return 0 if payload["status"] != "failed" else 1


def cmd_result(args) -> int:
    from .client import ServiceError

    try:
        artifact = _client(args).result(args.job)
    except ServiceError as exc:
        raise SystemExit(f"repro-client: {exc}")
    blob = _dump(artifact)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(blob)
        print(f"repro-client: wrote {args.out}", file=sys.stderr)
    else:
        print(blob, end="")
    return 0


def cmd_trends(args) -> int:
    from .client import ServiceError

    try:
        payload = _client(args).trends(
            benchmark=args.benchmark,
            profile=args.profile,
            ratio_base=args.ratio_base,
            metric=args.metric,
        )
    except ServiceError as exc:
        raise SystemExit(f"repro-client: {exc}")
    rows = payload["rows"]
    if args.json:
        print(_dump(payload), end="")
        return 0
    for row in rows:
        ratio = row.get("ratio")
        tail = (
            f"ratio {ratio:.3f}" if ratio is not None
            else f"value {row['value']:g}" if "value" in row
            else ""
        )
        cycles = f" {row['cycles']} cycles" if "cycles" in row else ""
        print(
            f"run {row['run']} ({row['git_sha'][:12]}) "
            f"{row['benchmark']}/{row['profile']}:{cycles} {tail}".rstrip()
        )
    if not rows:
        print("repro-client: no trend rows", file=sys.stderr)
    return 0


def cmd_stats(args) -> int:
    from .client import ServiceError

    try:
        payload = _client(args).stats()
    except ServiceError as exc:
        raise SystemExit(f"repro-client: {exc}")
    print(_dump(payload), end="")
    return 0


def cmd_metrics(args) -> int:
    from .client import ServiceError

    try:
        text = _client(args).metrics()
    except ServiceError as exc:
        raise SystemExit(f"repro-client: {exc}")
    print(text, end="")
    return 0


def cmd_admin(args) -> int:
    from .client import ServiceError

    if args.admin_command == "gc":
        try:
            payload = _client(args).admin_gc()
        except ServiceError as exc:
            raise SystemExit(f"repro-client: {exc}")
        print(
            f"repro-client: gc reaped {payload['reaped_tmp_files']} orphaned "
            f"temp file(s) in {payload['cache_dir']}"
        )
        return 0
    raise SystemExit(f"repro-client: unknown admin command {args.admin_command!r}")


def build_client_parser() -> argparse.ArgumentParser:
    from ..parallel import add_execution_args

    parser = argparse.ArgumentParser(
        prog="repro-client",
        description="client for the repro-serve experiment daemon",
    )
    parser.add_argument("--url", default=os.environ.get("REPRO_SERVICE_URL",
                                                        DEFAULT_URL),
                        help="daemon base URL (default: $REPRO_SERVICE_URL "
                             f"or {DEFAULT_URL})")
    parser.add_argument("--trace", nargs="?", const="", default=None,
                        metavar="ID",
                        help="propagate X-Repro-Trace on every request; "
                             "bare --trace mints a fresh trace id, --trace ID "
                             "joins an existing trace")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry 429/503 admission rejections up to N "
                             "times with seeded exponential backoff honoring "
                             "the daemon's Retry-After (default: 0)")
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="queue a benchmark-matrix job")
    submit.add_argument("--benchmarks", default=None,
                        help="comma-separated graph-suite subset (default: all)")
    submit.add_argument("--profiles", default=None,
                        help="comma-separated runtime profiles (default: all)")
    submit.add_argument("--scale", type=float, default=1.0)
    submit.add_argument("--git-sha", default=None,
                        help="stamp this SHA instead of the daemon's HEAD")
    submit.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="per-job wall-clock deadline in seconds; the "
                             "daemon caps it at its own --job-deadline / 1h "
                             "and kills the job's subprocess group on expiry")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes; print the artifact")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait deadline in seconds (default: 600)")
    submit.add_argument("--out", default=None, metavar="FILE",
                        help="with --wait, write the artifact here")
    # same shared flags as every runner CLI; the service rejects fault
    # plans, so an armed --fault-* fails client-side before any HTTP
    add_execution_args(submit)
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser("status", help="one job's state and stats")
    status.add_argument("job", type=int)
    status.set_defaults(func=cmd_status)

    result = sub.add_parser("result", help="a finished job's BENCH artifact")
    result.add_argument("job", type=int)
    result.add_argument("--out", default=None, metavar="FILE")
    result.set_defaults(func=cmd_result)

    trends = sub.add_parser("trends", help="cross-run ratio ladder / metric history")
    trends.add_argument("--benchmark", default=None)
    trends.add_argument("--profile", default=None)
    trends.add_argument("--ratio-base", default=None,
                        help="ratio anchor profile (default: clr-1.1)")
    trends.add_argument("--metric", default=None,
                        help="flattened counter/gauge name instead of cycles")
    trends.add_argument("--json", action="store_true",
                        help="raw JSON rows instead of the ladder listing")
    trends.set_defaults(func=cmd_trends)

    stats = sub.add_parser("stats", help="service counters, compile stats, store counts")
    stats.set_defaults(func=cmd_stats)

    metrics = sub.add_parser(
        "metrics", help="raw GET /metrics text exposition (Prometheus format)"
    )
    metrics.set_defaults(func=cmd_metrics)

    admin = sub.add_parser("admin", help="daemon administration")
    admin.add_argument("admin_command", choices=["gc"],
                       help="gc: reap orphaned compile-cache temp files")
    admin.set_defaults(func=cmd_admin)
    return parser


_CLIENT_COMMANDS = {"submit", "status", "result", "trends", "stats",
                    "metrics", "admin"}


def client_main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    for i, tok in enumerate(argv):
        if tok in _CLIENT_COMMANDS:
            break
        if tok == "--trace":
            # argparse's nargs="?" would swallow a following subcommand
            # token as the trace id; rewrite bare --trace to --trace= so
            # ``repro-client --trace submit ...`` mints an id as documented
            nxt = argv[i + 1] if i + 1 < len(argv) else None
            if nxt is None or nxt in _CLIENT_COMMANDS or nxt.startswith("-"):
                argv[i] = "--trace="
            break
    args = build_client_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
