"""Intrinsic (BCL) method semantics shared by both execution engines.

Each intrinsic is ``fn(host, args) -> value``.  ``host`` is the executing
engine and provides at least:

* ``now() -> int`` — the simulated cycle counter (0 in the plain interpreter)
* ``bench`` — a :class:`~repro.vm.bench.BenchRecorder`
* ``stdout`` — list of emitted output lines
* ``rng`` — the deterministic ``Math.Random`` generator
* ``serializer`` — a :class:`Serializer`
* ``charge_units(kind, n)`` — data-dependent cost hook (no-op when the
  engine does not do cycle accounting)
* ``gc_collect()`` / ``total_allocated()`` — heap hooks

Thread and Monitor intrinsics are *not* in this table: they interact with
the scheduler, so the threaded engine intercepts them; the single-threaded
interpreter provides degenerate semantics separately.

``Math.Random`` uses java.util.Random's LCG so the "support code kept
identical" rule from the paper holds across every runtime profile *and*
the Python reference implementations.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from ..errors import VMError
from .objects import BoxedValue, MDArray, ObjectInstance, SZArray, StructValue
from .values import i32, i64, r4


class JavaRandom:
    """java.util.Random's 48-bit LCG (nextDouble), fixed seed by default."""

    MULT = 0x5DEECE66D
    ADD = 0xB
    MASK = (1 << 48) - 1

    def __init__(self, seed: int = 12345) -> None:
        self.seed = (seed ^ self.MULT) & self.MASK

    def _next(self, bits: int) -> int:
        self.seed = (self.seed * self.MULT + self.ADD) & self.MASK
        return self.seed >> (48 - bits)

    def next_double(self) -> float:
        return ((self._next(26) << 27) + self._next(27)) / float(1 << 53)

    def next_int(self) -> int:
        return i32(self._next(32))


class Serializer:
    """The Serial micro-benchmark's object stream.

    ``write`` walks the object graph, charging per node/field, and appends a
    structural snapshot; ``read`` pops snapshots FIFO and rebuilds fresh
    objects — semantically a round-trip through a binary formatter.
    """

    def __init__(self) -> None:
        self.stream: List = []
        self.bytes_written = 0

    def reset(self) -> None:
        self.stream.clear()
        self.bytes_written = 0

    def write(self, obj, host) -> int:
        size, snapshot = self._snapshot(obj, {}, host)
        self.stream.append(snapshot)
        self.bytes_written += size
        host.charge_units("serialize_byte", size)
        return size

    def read(self, host):
        if not self.stream:
            raise VMError("Serializer.ReadObject on empty stream")
        snapshot = self.stream.pop(0)
        size, value = self._rebuild(snapshot, {}, host)
        host.charge_units("serialize_byte", size)
        return value

    # snapshots are (kind, payload) trees; shared nodes via id-map
    def _snapshot(self, obj, seen: Dict[int, int], host) -> Tuple[int, object]:
        if obj is None:
            return 1, ("null",)
        if isinstance(obj, (int, float)):
            return 8, ("prim", obj)
        if isinstance(obj, str):
            return 4 + 2 * len(obj), ("str", obj)
        oid = id(obj)
        if oid in seen:
            return 4, ("ref", seen[oid])
        index = len(seen)
        seen[oid] = index
        if isinstance(obj, BoxedValue):
            return 12, ("box", obj.type_name, obj.value)
        if isinstance(obj, SZArray):
            total = 8
            items = []
            for v in obj.data:
                s, snap = self._snapshot(v, seen, host)
                total += s
                items.append(snap)
            return total, ("szarray", obj.elem, items)
        if isinstance(obj, MDArray):
            total = 8 + 4 * len(obj.dims)
            items = []
            for v in obj.data:
                s, snap = self._snapshot(v, seen, host)
                total += s
                items.append(snap)
            return total, ("mdarray", obj.elem, obj.dims, items)
        if isinstance(obj, (ObjectInstance, StructValue)):
            total = 16 + 2 * len(obj.rtclass.name)
            items = []
            for v in obj.fields:
                s, snap = self._snapshot(v, seen, host)
                total += s
                items.append(snap)
            return total, ("object", obj.rtclass, items)
        raise VMError(f"cannot serialize {type(obj).__name__}")

    def _rebuild(self, snap, memo: Dict[int, object], host) -> Tuple[int, object]:
        kind = snap[0]
        if kind == "null":
            return 1, None
        if kind == "prim":
            return 8, snap[1]
        if kind == "str":
            return 4 + 2 * len(snap[1]), snap[1]
        if kind == "ref":
            return 4, memo[snap[1]]
        index = len(memo)
        if kind == "box":
            value = BoxedValue(snap[1], snap[2])
            memo[index] = value
            return 12, value
        if kind == "szarray":
            arr = SZArray(snap[1], len(snap[2]))
            memo[index] = arr
            total = 8
            for i, item in enumerate(snap[2]):
                s, v = self._rebuild(item, memo, host)
                arr.data[i] = v
                total += s
            return total, arr
        if kind == "mdarray":
            arr = MDArray(snap[1], snap[2])
            memo[index] = arr
            total = 8 + 4 * len(snap[2])
            for i, item in enumerate(snap[3]):
                s, v = self._rebuild(item, memo, host)
                arr.data[i] = v
                total += s
            return total, arr
        if kind == "object":
            rtclass = snap[1]
            cls = ObjectInstance if not rtclass.is_value_type else StructValue
            obj = cls(rtclass, [None] * len(snap[2]))
            memo[index] = obj
            total = 16 + 2 * len(rtclass.name)
            for i, item in enumerate(snap[2]):
                s, v = self._rebuild(item, memo, host)
                obj.fields[i] = v
                total += s
            return total, obj
        raise VMError(f"bad snapshot kind {kind}")  # pragma: no cover


# ---------------------------------------------------------------------------
# math helpers with C#/Java edge-case semantics (NaN instead of exceptions)
# ---------------------------------------------------------------------------

_NAN = float("nan")


def _safe(fn: Callable[..., float]) -> Callable[..., float]:
    def wrapped(*args: float) -> float:
        try:
            return fn(*args)
        except (ValueError, OverflowError):
            return _NAN

    return wrapped


def _log(x: float) -> float:
    if x == 0.0:
        return float("-inf")
    if x < 0.0 or x != x:
        return _NAN
    return math.log(x)


def _pow(x: float, y: float) -> float:
    try:
        r = math.pow(x, y)
        return r
    except OverflowError:
        return float("inf")
    except ValueError:
        return _NAN


def _rint(x: float) -> float:
    """Round half to even, result as float (Java Math.rint / C# Math.Round)."""
    if x != x or math.isinf(x):
        return x
    floor = math.floor(x)
    diff = x - floor
    if diff < 0.5:
        return floor
    if diff > 0.5:
        return floor + 1.0
    return floor if math.fmod(floor, 2.0) == 0.0 else floor + 1.0


def _exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return float("inf")


# ---------------------------------------------------------------------------
# the dispatch table
# ---------------------------------------------------------------------------


def _writeline(host, args):
    text = _to_text(args[0]) if args else ""
    host.stdout.append(text)
    return None


def _write(host, args):
    text = _to_text(args[0])
    if host.stdout and not host.stdout[-1].endswith("\n") and host.stdout[-1] != "":
        host.stdout[-1] += text
    else:
        host.stdout.append(text)
    return None


def _to_text(v) -> str:
    if v is None:
        return ""
    if isinstance(v, bool):  # pragma: no cover - bools arrive as ints
        return "True" if v else "False"
    if isinstance(v, float):
        return repr(v)
    return str(v)


def build_table() -> Dict[Tuple[str, str, int], Callable]:
    t: Dict[Tuple[str, str, int], Callable] = {}

    def reg(cls: str, name: str, nargs: int, fn: Callable) -> None:
        t[(cls, name, nargs)] = fn

    # --- Math ---------------------------------------------------------------
    m = "System.Math"
    reg(m, "Abs", 1, lambda h, a: abs(a[0]))
    reg(m, "Max", 2, lambda h, a: a[0] if a[0] >= a[1] else a[1])
    reg(m, "Min", 2, lambda h, a: a[0] if a[0] <= a[1] else a[1])
    reg(m, "Sin", 1, lambda h, a: math.sin(a[0]) if a[0] == a[0] and not math.isinf(a[0]) else _NAN)
    reg(m, "Cos", 1, lambda h, a: math.cos(a[0]) if a[0] == a[0] and not math.isinf(a[0]) else _NAN)
    reg(m, "Tan", 1, lambda h, a: math.tan(a[0]) if a[0] == a[0] and not math.isinf(a[0]) else _NAN)
    reg(m, "Asin", 1, lambda h, a: _safe(math.asin)(a[0]))
    reg(m, "Acos", 1, lambda h, a: _safe(math.acos)(a[0]))
    reg(m, "Atan", 1, lambda h, a: math.atan(a[0]))
    reg(m, "Atan2", 2, lambda h, a: math.atan2(a[0], a[1]))
    reg(m, "Floor", 1, lambda h, a: float(math.floor(a[0])) if a[0] == a[0] and not math.isinf(a[0]) else a[0])
    reg(m, "Ceiling", 1, lambda h, a: float(math.ceil(a[0])) if a[0] == a[0] and not math.isinf(a[0]) else a[0])
    reg(m, "Sqrt", 1, lambda h, a: math.sqrt(a[0]) if a[0] >= 0.0 else _NAN)
    reg(m, "Exp", 1, lambda h, a: _exp(a[0]))
    reg(m, "Log", 1, lambda h, a: _log(a[0]))
    reg(m, "Pow", 2, lambda h, a: _pow(a[0], a[1]))
    reg(m, "Rint", 1, lambda h, a: _rint(a[0]))
    reg(m, "Round", 1, lambda h, a: _rint(a[0]))
    reg(m, "Random", 0, lambda h, a: h.rng.next_double())

    # --- Console -------------------------------------------------------------
    c = "System.Console"
    reg(c, "WriteLine", 1, _writeline)
    reg(c, "WriteLine", 0, _writeline)
    reg(c, "Write", 1, _write)

    # --- Bench ----------------------------------------------------------------
    b = "Bench"
    reg(b, "Start", 1, lambda h, a: h.bench.start(a[0]))
    reg(b, "Stop", 1, lambda h, a: h.bench.stop(a[0]))
    reg(b, "Ops", 2, lambda h, a: h.bench.add_ops(a[0], a[1]))
    reg(b, "Flops", 2, lambda h, a: h.bench.add_flops(a[0], a[1]))
    reg(b, "Result", 2, lambda h, a: h.bench.add_result(a[0], a[1]))
    reg(b, "Fail", 1, lambda h, a: h.bench.fail(a[0]))

    # --- String ---------------------------------------------------------------
    s = "System.String"

    def concat(h, a):
        left, right = a
        text = _concat_text(left) + _concat_text(right)
        h.charge_units("string_char", len(text))
        return text

    reg(s, "Concat", 2, concat)
    reg(s, "Equals", 2, lambda h, a: 1 if a[0] == a[1] else 0)
    reg(s, "Length", 1, lambda h, a: len(a[0]))

    # --- Array ------------------------------------------------------------------

    def get_length(h, a):
        arr, dim = a
        if isinstance(arr, MDArray):
            if dim < 0 or dim >= len(arr.dims):
                raise VMError("GetLength dimension out of range")
            return arr.dims[dim]
        if isinstance(arr, SZArray):
            if dim != 0:
                raise VMError("GetLength dimension out of range")
            return arr.length
        raise VMError("GetLength on non-array")

    reg("System.Array", "GetLength", 2, get_length)

    # --- Serializer ----------------------------------------------------------------
    z = "Serializer"
    reg(z, "Reset", 0, lambda h, a: h.serializer.reset())
    reg(z, "WriteObject", 1, lambda h, a: h.serializer.write(a[0], h))
    reg(z, "ReadObject", 0, lambda h, a: h.serializer.read(h))
    reg(z, "Size", 0, lambda h, a: i32(h.serializer.bytes_written))

    # --- GC / Env ---------------------------------------------------------------
    reg("System.GC", "Collect", 0, lambda h, a: h.gc_collect())
    reg("System.GC", "TotalAllocated", 0, lambda h, a: i64(h.total_allocated()))
    reg("Env", "Clock", 0, lambda h, a: i64(h.now()))
    reg("Env", "ThreadCount", 0, lambda h, a: h.thread_count())

    return t


def _concat_text(v) -> str:
    if isinstance(v, str):
        return v
    if v is None:
        return ""
    if isinstance(v, float):
        return repr(v)
    if isinstance(v, BoxedValue):
        return _concat_text(v.value)
    return str(v)


INTRINSICS = build_table()

#: intrinsic class names whose calls the engines route here
INTRINSIC_CLASSES = frozenset(
    {
        "System.Math",
        "System.Console",
        "Bench",
        "System.String",
        "System.Array",
        "Serializer",
        "System.GC",
        "Env",
        "System.Threading.Thread",
        "System.Threading.Monitor",
    }
)

#: the thread/monitor subset needing scheduler interception
THREADING_CLASSES = frozenset(
    {"System.Threading.Thread", "System.Threading.Monitor"}
)
