"""Threaded-code dispatch for the measured (MIR) engine.

The classic executor (:meth:`repro.vm.machine.Machine._step_thread`) walks
one giant if/elif chain per instruction and re-derives operands, cost
constants and jump targets from the :class:`~repro.jit.mir.MInstr` on every
cycle.  The PR 2/3 flamegraphs put >80% of host time in exactly that
re-derivation.  This module removes it: at first execution of a function the
machine translates its MIR once into a flat array of *pre-bound closures* —
one per pc, with operand vregs, cost constants, resolved call records and
jump targets burned in — and the driver loop shrinks to
``pc = ops[pc](R, st)``.  For the core register/arith/branch subset the
closures are *generated as Python source* and ``exec``-compiled
(:func:`_make_single_gen`), so operands and constants are ``LOAD_FAST``
locals with value-kind wrap/round math inlined; everything outside the
subset keeps a hand-written closure.

Equivalence contract (enforced by ``tests/test_dispatch_equivalence.py``):
a threaded machine is **bit-identical** to a classic one in ``cycles``,
``instructions``, results, metrics snapshots, observer event streams and
fault-fire sites.  Two classic behaviours matter for that:

* the budget predicate ``total_spent + spent >= budget`` is checked after
  every instruction; flushes move ``spent`` into ``total`` so the sum is
  flush-invariant and the driver can test it after each closure returns;
* a quantum that ends because the thread blocked on a monitor / yielded
  drops the current binding's instruction count (the classic loop returns
  before the ``self.instructions += icount`` flush).  The driver reproduces
  the drop on the EXIT sentinel;
* the classic per-binding *burst* rebind (``icount >= burst``) must be
  kept with the exact same cadence: several profiles carry **float** cost
  entries, and a rebind flushes ``spent`` into ``machine.cycles`` — float
  addition is non-associative, so moving a flush boundary by even one
  instruction changes the low-order bits of the final cycle count.  The
  instruction counter therefore lives in :class:`ExecState` so fused runs
  can break between elements exactly where the classic loop would have.

Closure protocol: ``ops[pc](R, st) -> next_pc``, where ``next_pc >= 0``
continues in this frame, ``REBIND`` re-binds the top frame (call/ret/
endfinally) and ``EXIT`` ends the quantum (blocked / yielded).  Frame
locals are the plain ``frame.R`` slot array, passed to every closure per
dispatch — closures never capture a frame's ``R`` at build time, because
one closure array is shared by *every* activation of the function
(recursion, multiple threads); see the frame-aliasing regression tests.

Superinstructions: :func:`fuse_plan` greedily merges straight-line runs of
pure register ops (up to :data:`MAX_FUSE_RUN`, optionally ending in a
branch) into one generated function per run (:func:`_make_fused_gen`).
Fusion changes host speed only.  Each fused body carries two paths: a
guarded *fast path* (all costs int, comfortably inside the budget and
burst bounds) that executes the whole run with a single bookkeeping store,
and a *slow path* that re-checks the exact classic budget/burst predicates
between elements and returns to the unfused interior pc when the quantum
ends mid-run.  A raising element flushes the classic-partial ``spent`` /
``icount`` and records the precise raising pc in ``ExecState.raise_pc``
before the throw.  The fuser refuses to fuse into branch targets or
exception-region boundaries, and stands down entirely on machines with a
fault injector armed (every pc stays an attributable fire site).
"""

from __future__ import annotations

import math
import operator
import os
import struct

from ..cil import cts
from ..errors import VMError
from ..jit import mir
from ..observe.recorder import CAT_DISPATCH, CAT_EXECUTE, CAT_MEMTAX
from .exceptions import GuestException, make_exception
from .objects import BoxedValue, MDArray, StructValue
from .threads import Frame, RUNNABLE
from .values import i32, i64, r4

#: closure sentinel returns (< 0 so real pcs stay >= 0)
REBIND = -1
EXIT = -2

#: recognised values for the Machine(dispatch=...) knob
DISPATCH_MODES = ("classic", "threaded", "threaded-nofuse")

#: environment default for the knob (CLI/harness leave it None)
ENV_VAR = "REPRO_DISPATCH"


def resolve_dispatch(value=None) -> str:
    """Resolve a ``dispatch=`` knob value: explicit value, else the
    ``REPRO_DISPATCH`` environment variable, else ``classic``."""
    if value is None:
        value = os.environ.get(ENV_VAR) or "classic"
    if value not in DISPATCH_MODES:
        raise VMError(
            f"unknown dispatch engine {value!r} "
            f"(expected one of: {', '.join(DISPATCH_MODES)})"
        )
    return value


class ExecState:
    """Mutable per-quantum execution state shared with the closures.

    ``spent`` is the unflushed cycle count of the current binding,
    ``total`` the cycles already flushed to ``machine.cycles`` this
    quantum (their sum is the budget predicate), ``icount`` the current
    binding's instruction count (fused second halves bump it too, so the
    burst predicate sees exactly what the classic loop would), ``burst``
    the classic per-binding rebind bound.  ``raise_pc`` is -1 except when
    a fused run raises a guest exception from an interior element: the run
    records the raising pc here (after flushing its hoisted ``spent`` and
    ``icount`` copies) so the driver attributes the throw to the exact
    instruction, not the run start.
    """

    __slots__ = (
        "machine", "thread", "frame", "budget", "spent", "total",
        "icount", "burst", "raise_pc",
    )

    def __init__(self, machine, thread, budget, burst) -> None:
        self.machine = machine
        self.thread = thread
        self.frame = None
        self.budget = budget
        self.spent = 0
        self.total = 0
        self.icount = 0
        self.burst = burst
        self.raise_pc = -1


# ---------------------------------------------------------------------------
# superinstruction planning
# ---------------------------------------------------------------------------

#: ops that may appear anywhere in a fused run: register transforms that
#: never flush or rebind a frame, and always fall through to pc+1.
#: DIV/REM may raise — the generated run records the exact raising pc in
#: ``ExecState.raise_pc`` so the driver's throw attribution stays
#: per-instruction.  (Memory ops flush or tax; calls rebind — excluded.)
FUSABLE_FIRST = frozenset(
    {
        mir.MOV,
        mir.LDI,
        mir.ADD,
        mir.SUB,
        mir.MUL,
        mir.DIV,
        mir.REM,
        mir.AND,
        mir.OR,
        mir.XOR,
        mir.SHL,
        mir.SHR,
        mir.SHRU,
        mir.NEG,
        mir.NOT,
        mir.CONV,
    }
) | mir.COMPARES

#: the last element of a run may additionally be a branch (compare+branch
#: and arith+branch are the dominant pairs in the PR 2/3 profiles)
FUSABLE_SECOND = FUSABLE_FIRST | frozenset({mir.JMP}) | mir.COND_JUMPS

#: longest superinstruction: straight-line MIR collapses into runs of up
#: to this many instructions per dispatch
MAX_FUSE_RUN = 16


def fuse_plan(code, regions, branch_targets, faults_armed: bool,
              max_run: int = MAX_FUSE_RUN):
    """Plan superinstruction fusion for one function.

    Returns ``(start, length)`` tuples of non-overlapping fused runs
    (``length >= 2``), chosen greedily left to right.  Pure function of
    its inputs so the property-based tests can exercise it standalone.

    All interior elements of a run must be in :data:`FUSABLE_FIRST` (pure
    register transforms that always fall through); the final element may
    additionally be a branch (:data:`FUSABLE_SECOND`).  No element other
    than the first may be a branch target or an exception region boundary
    (try/handler start or end) — entering a run sideways must always hit a
    plain closure.  With a fault injector armed nothing is fused at all:
    every pc stays an individually observable fire site.
    """
    if faults_armed:
        return []
    boundaries = set(branch_targets)
    for reg in regions:
        boundaries.update(
            (reg.try_start, reg.try_end, reg.handler_start, reg.handler_end)
        )
    runs = []
    i = 0
    n = len(code)
    while i < n - 1:
        if code[i].op not in FUSABLE_FIRST:
            i += 1
            continue
        j = i + 1
        while j < n and j - i < max_run and j not in boundaries:
            op = code[j].op
            if op in FUSABLE_FIRST:
                j += 1
            elif op in FUSABLE_SECOND:
                j += 1  # branch: include it, then the run must end
                break
            else:
                break
        if j - i >= 2:
            runs.append((i, j - i))
            i = j
        else:
            i += 1
    return runs


# ---------------------------------------------------------------------------
# source-specialized closures
# ---------------------------------------------------------------------------
#
# The fusable opcode subset is hot enough that every residual host-level
# call per retired instruction — an ``operator`` function, an ``i32``/``r4``
# wrap, the second half of a composed pair — shows up directly in
# wall-clock.  For these opcodes the builder generates the closure *source*
# with operand slots, wrap arithmetic and jump targets inlined as literals,
# then exec-compiles it once per (machine, function).  A fused pair becomes
# one flat function body with the classic budget/burst predicate re-checked
# between the halves.  The semantics are exactly those of the hand-written
# closures below; the differential suite holds the result to the classic
# loop bit-for-bit.

_F32 = struct.Struct("f")
#: names every generated body may reference; bound as default arguments so
#: lookups are LOAD_FAST, not LOAD_GLOBAL.  ``_loaded`` and ``_mkexc``
#: (used by the raising DIV/REM fragments) are supplied per machine by
#: :func:`build_ops` through the ``xenv`` parameter.
_GEN_ENV = {
    "_fp": _F32.pack,
    "_fu": _F32.unpack,
    "_INF": float("inf"),
    "_NINF": float("-inf"),
    "_NAN": float("nan"),
    "_copysign": math.copysign,
    "_fmod": math.fmod,
    "type": type,
    "float": float,
    "int": int,
    "abs": abs,
}

_ARITH_SYM = {mir.ADD: "+", mir.SUB: "-", mir.MUL: "*"}
_BIT_SYM = {mir.AND: "&", mir.OR: "|", mir.XOR: "^"}
_CMP_SYM = {mir.CLT: "<", mir.CLE: "<=", mir.CGT: ">", mir.CGE: ">="}
_JCC_SYM = {mir.JLT: "<", mir.JLE: "<=", mir.JGT: ">", mir.JGE: ">="}


def _i32_into(tmp, lv):
    """Statements writing ``i32(tmp)`` into lvalue ``lv`` (two's-complement
    wrap, identical to :func:`repro.vm.values.i32`)."""
    return [
        f"{tmp} &= 4294967295",
        f"{lv} = {tmp} - 4294967296 if {tmp} >= 2147483648 else {tmp}",
    ]


def _i64_into(tmp, lv):
    return [
        f"{tmp} &= 18446744073709551615",
        f"{lv} = {tmp} - 18446744073709551616"
        f" if {tmp} >= 9223372036854775808 else {tmp}",
    ]


def _r4_into(tmp, lv):
    """Statements writing ``r4(tmp)`` into ``lv``: round through an actual
    4-byte representation, saturating to ±inf exactly like values.r4."""
    return [
        "try:",
        f"    {lv} = _fu(_fp({tmp}))[0]",
        "except OverflowError:",
        f"    {lv} = _INF if {tmp} > 0 else _NINF",
    ]


def _nan_check(x, y):
    return f"(type({x}) is float and {x} != {x}) or (type({y}) is float and {y} != {y})"


def _fragment(ins, nxt, sfx, raise_pre=()):
    """Source fragment for one fusable instruction: ``(body, tail, env)``.

    ``body`` is the computation (falls through), ``tail`` the control
    transfer (``return`` statements), ``env`` extra names to bind as
    defaults.  ``raise_pre`` is spliced in front of every ``raise``
    statement — fused runs use it to flush their hoisted bookkeeping and
    record the raising pc before the exception unwinds.  Returns None for
    opcodes outside the codegen subset — the caller falls back to the
    hand-written closures, so the two layers can never disagree about
    coverage silently.
    """
    o = ins.op
    a = ins.a
    b = ins.b
    d = ins.dst
    kind = ins.kind
    t = ins.target
    v = f"v{sfx}"
    x = f"x{sfx}"
    y = f"y{sfx}"
    env = {}
    tail = [f"return {nxt}"]

    if o == mir.MOV:
        if kind == "r4":
            body = [f"{v} = R[{a}]", f"if type({v}) is float:"]
            body += ["    " + ln for ln in _r4_into(v, v)]
            body.append(f"R[{d}] = {v}")
        else:
            body = [f"R[{d}] = R[{a}]"]
        return body, tail, env

    if o == mir.LDI:
        imm = f"_i{sfx}"
        env[imm] = a
        return [f"R[{d}] = {imm}"], tail, env

    if o in _ARITH_SYM:
        expr = f"R[{a}] {_ARITH_SYM[o]} R[{b}]"
        if kind == "i4":
            body = [f"{v} = {expr}"] + _i32_into(v, f"R[{d}]")
        elif kind == "i8":
            body = [f"{v} = {expr}"] + _i64_into(v, f"R[{d}]")
        elif kind == "r4":
            body = [f"{v} = {expr}"] + _r4_into(v, f"R[{d}]")
        else:
            body = [f"R[{d}] = {expr}"]
        return body, tail, env

    if o in _BIT_SYM:
        return [f"R[{d}] = R[{a}] {_BIT_SYM[o]} R[{b}]"], tail, env

    if o == mir.SHL:
        if kind == "i4":
            body = [f"{v} = R[{a}] << (R[{b}] & 31)"] + _i32_into(v, f"R[{d}]")
        else:
            body = [f"{v} = R[{a}] << (R[{b}] & 63)"] + _i64_into(v, f"R[{d}]")
        return body, tail, env

    if o == mir.SHR:
        mask = 31 if kind == "i4" else 63
        return [f"R[{d}] = R[{a}] >> (R[{b}] & {mask})"], tail, env

    if o == mir.SHRU:
        if kind == "i4":
            body = [f"{v} = (R[{a}] & 4294967295) >> (R[{b}] & 31)"]
            body += _i32_into(v, f"R[{d}]")
        else:
            body = [f"{v} = (R[{a}] & 18446744073709551615) >> (R[{b}] & 63)"]
            body += _i64_into(v, f"R[{d}]")
        return body, tail, env

    if o == mir.NEG:
        if kind == "i4":
            body = [f"{v} = -R[{a}]"] + _i32_into(v, f"R[{d}]")
        elif kind == "i8":
            body = [f"{v} = -R[{a}]"] + _i64_into(v, f"R[{d}]")
        else:
            body = [f"R[{d}] = -R[{a}]"]
        return body, tail, env

    if o == mir.NOT:
        into = _i32_into if kind == "i4" else _i64_into
        return [f"{v} = ~R[{a}]"] + into(v, f"R[{d}]"), tail, env

    if o == mir.CEQ or o == mir.CNE:
        eq, ne = ("1", "0") if o == mir.CEQ else ("0", "1")
        on_nan = "0" if o == mir.CEQ else "1"
        body = [
            f"{x} = R[{a}]",
            f"{y} = R[{b}]",
            f"if {_nan_check(x, y)}:",
            f"    R[{d}] = {on_nan}",
            f"elif {x} is {y} or {x} == {y}:",
            f"    R[{d}] = {eq}",
            "else:",
            f"    R[{d}] = {ne}",
        ]
        return body, tail, env

    if o in _CMP_SYM:
        body = [
            f"{x} = R[{a}]",
            f"{y} = R[{b}]",
            f"if {_nan_check(x, y)}:",
            f"    R[{d}] = 0",
            "else:",
            f"    R[{d}] = 1 if {x} {_CMP_SYM[o]} {y} else 0",
        ]
        return body, tail, env

    if o == mir.JMP:
        return [], [f"return {t}"], env

    if o == mir.JTRUE:
        body = [f"{v} = R[{a}]"]
        return body, [f"return {t} if ({v} is not None and {v} != 0) else {nxt}"], env

    if o == mir.JFALSE:
        body = [f"{v} = R[{a}]"]
        return body, [f"return {t} if ({v} is None or {v} == 0) else {nxt}"], env

    if o == mir.JEQ or o == mir.JNE:
        want_eq = o == mir.JEQ
        body = [f"{x} = R[{a}]", f"{y} = R[{b}]"]
        tail = [
            f"if {_nan_check(x, y)}:",
            f"    return {nxt if want_eq else t}",
            f"if {x} is {y} or {x} == {y}:",
            f"    return {t if want_eq else nxt}",
            f"return {nxt if want_eq else t}",
        ]
        return body, tail, env

    if o in _JCC_SYM:
        body = [f"{x} = R[{a}]", f"{y} = R[{b}]"]
        tail = [
            f"if {_nan_check(x, y)}:",
            f"    return {nxt}",
            f"return {t} if {x} {_JCC_SYM[o]} {y} else {nxt}",
        ]
        return body, tail, env

    # --- raising opcodes: as singles the driver's pc already points at
    # the instruction; inside a fused run ``raise_pre`` records the exact
    # raising pc (and flushes the run's hoisted bookkeeping) first.
    raise_dbz = list(raise_pre) + [
        "raise _mkexc(_loaded, 'DivideByZeroException')"
    ]

    if o == mir.DIV:
        q = f"q{sfx}"
        if kind in ("i4", "i8"):
            into = _i32_into if kind == "i4" else _i64_into
            body = [
                f"{x} = R[{a}]",
                f"{y} = R[{b}]",
                f"if {y} == 0:",
            ] + ["    " + ln for ln in raise_dbz] + [
                f"{v} = ({x} if {x} >= 0 else -{x}) // ({y} if {y} >= 0 else -{y})",
                f"if ({x} >= 0) != ({y} >= 0):",
                f"    {v} = -{v}",
            ] + into(v, f"R[{d}]")
            return body, tail, env
        body = [
            f"{x} = R[{a}]",
            f"{y} = R[{b}]",
            f"if {y} == 0.0:",
            f"    if {x} == 0.0 or {x} != {x}:",
            f"        {q} = _NAN",
            f"    elif ({x} > 0) == (_copysign(1.0, {y}) > 0):",
            f"        {q} = _INF",
            "    else:",
            f"        {q} = _NINF",
            "else:",
            f"    {q} = {x} / {y}",
        ]
        if kind == "r4":
            body += _r4_into(q, f"R[{d}]")
        else:
            body.append(f"R[{d}] = {q}")
        return body, tail, env

    if o == mir.REM:
        if kind in ("i4", "i8"):
            body = [
                f"{x} = R[{a}]",
                f"{y} = R[{b}]",
                f"if {y} == 0:",
            ] + ["    " + ln for ln in raise_dbz] + [
                f"{v} = ({x} if {x} >= 0 else -{x}) // ({y} if {y} >= 0 else -{y})",
                f"if ({x} >= 0) != ({y} >= 0):",
                f"    {v} = -{v}",
                f"R[{d}] = {x} - {v} * {y}",
            ]
        else:
            body = [
                f"{y} = R[{b}]",
                f"R[{d}] = _fmod(R[{a}], {y}) if {y} != 0.0 else _NAN",
            ]
        return body, tail, env

    if o == mir.CONV:
        ck = ins.extra
        if ck == "r8":
            return [f"R[{d}] = float(R[{a}])"], tail, env
        if ck == "r4":
            return [f"{v} = float(R[{a}])"] + _r4_into(v, f"R[{d}]"), tail, env
        if ck == "i4":
            body = [
                f"{v} = R[{a}]",
                f"if type({v}) is float:",
                f"    R[{d}] = -2147483648 if ({v} != {v} or {v} >= 2147483648.0"
                f" or {v} < -2147483648.0) else int({v})",
                "else:",
            ] + ["    " + ln for ln in _i32_into(v, f"R[{d}]")]
            return body, tail, env
        if ck == "i8":
            body = [
                f"{v} = R[{a}]",
                f"if type({v}) is float:",
                f"    R[{d}] = -9223372036854775808 if ({v} != {v}"
                f" or {v} >= 9223372036854775808.0"
                f" or {v} < -9223372036854775808.0) else int({v})",
                "else:",
            ] + ["    " + ln for ln in _i64_into(v, f"R[{d}]")]
            return body, tail, env
        return None  # narrow int converts: keep the hand-written closure

    return None


def _compile_gen(lines, env, xenv=None):
    """exec-compile a generated closure body into a callable ``(R, st)``."""
    ns = dict(_GEN_ENV)
    if xenv:
        ns.update(xenv)
    ns.update(env)
    args = "".join(f", {k}={k}" for k in ns)
    src = "def op_(R, st{}):\n{}\n".format(
        args, "\n".join("    " + ln for ln in lines)
    )
    exec(compile(src, "<dispatch-gen>", "exec"), ns)
    return ns["op_"]


def _make_single_gen(ins, pc, xenv=None):
    """Source-specialized single closure, or None outside the subset."""
    frag = _fragment(ins, pc + 1, "")
    if frag is None:
        return None
    body, tail, env = frag
    return _compile_gen([f"st.spent += {ins.cost!r}"] + body + tail, env, xenv)


def _make_fused_gen(code, start, length, xenv=None):
    """One flat function body for the run ``code[start : start + length]``.

    Cycle and instruction bookkeeping live in function locals (``sp``,
    ``ic``) for the whole run — one attribute load each at entry, one
    store at every exit.  Between elements the body re-checks the exact
    classic budget *and burst* predicates (``st.total``/``st.budget``/
    ``st.burst`` are constant across the run — pure register ops never
    flush — so their hoisted copies see the same values the classic loop
    reads per instruction)
    and resumes at the plain closure for the next element when the
    quantum would have ended there.  The cost additions happen in the
    same order and grouping as classic's per-instruction ``spent +=``,
    which keeps float-cost profiles bit-identical.
    """
    env = {}
    lines = [
        "spent = st.spent",
        "tot = st.total",
        "bud = st.budget",
        "ic = st.icount",
        "bur = st.burst",
    ]

    # Fast path: when every cost in the run is an int (exact, associative
    # arithmetic) and neither the budget nor the burst can trip anywhere
    # inside the run — provable with one conservative entry check, since
    # costs are non-negative and float addition is monotonic — the
    # per-element bookkeeping collapses to two stores at the exits.  The
    # ``spent`` int check matters: dynamic costs can have made it a float,
    # and float ``+=`` is order-sensitive, so only the per-element slow
    # path reproduces classic's sums then.
    all_int = all(type(code[start + k].cost) is int for k in range(length))
    if all_int:
        total_cost = sum(code[start + k].cost for k in range(length))
        partial = 0
        fast = []
        for k in range(length):
            pc = start + k
            partial += code[pc].cost
            frag = _fragment(
                code[pc],
                pc + 1,
                str(k),
                raise_pre=(
                    f"st.spent = spent + {partial}",
                    f"st.icount = ic + {k}",
                    f"st.raise_pc = {pc}",
                ),
            )
            if frag is None:
                return None
            body, tail, frag_env = frag
            env.update(frag_env)
            fast += body
            if k == length - 1:
                fast += [
                    f"st.spent = spent + {total_cost}",
                    f"st.icount = ic + {length - 1}",
                ] + tail
        lines.append(
            f"if spent.__class__ is int"
            f" and tot + spent + {total_cost} < bud"
            f" and ic + {length} < bur:"
        )
        lines += ["    " + ln for ln in fast]

    # Slow path: per-element cost accumulation and predicate checks, in
    # exactly classic's order and grouping (bit-identical float sums).
    for k in range(length):
        pc = start + k
        frag = _fragment(
            code[pc],
            pc + 1,
            f"s{k}",
            raise_pre=(
                "st.spent = sp",
                "st.icount = ic",
                f"st.raise_pc = {pc}",
            ),
        )
        if frag is None:
            return None
        body, tail, frag_env = frag
        env.update(frag_env)
        if k == 0:
            lines.append(f"sp = spent + {code[pc].cost!r}")
        else:
            lines += [
                "if tot + sp >= bud or ic >= bur:",
                "    st.spent = sp",
                "    st.icount = ic",
                f"    return {start + k}",
                "ic += 1",
                f"sp += {code[pc].cost!r}",
            ]
        lines += body
        if k == length - 1:
            lines += ["st.spent = sp", "st.icount = ic"] + tail
    return _compile_gen(lines, env, xenv)


# ---------------------------------------------------------------------------
# closure translation
# ---------------------------------------------------------------------------

_BIN_OPS = {mir.ADD: operator.add, mir.SUB: operator.sub, mir.MUL: operator.mul}
_BIT_OPS = {mir.AND: operator.and_, mir.OR: operator.or_, mir.XOR: operator.xor}
_CMP_OPS = {
    mir.CLT: operator.lt,
    mir.CLE: operator.le,
    mir.CGT: operator.gt,
    mir.CGE: operator.ge,
}
_JCC_OPS = {
    mir.JLT: operator.lt,
    mir.JLE: operator.le,
    mir.JGT: operator.gt,
    mir.JGE: operator.ge,
}


def build_ops(machine, fn):
    """Translate ``fn``'s MIR into the flat closure array for ``machine``.

    Called lazily at the first frame binding of ``fn`` on this machine —
    i.e. strictly after :meth:`Machine._link` resolved field slots and
    call records in place.  The result is cached per ``(machine, fn)``.
    """
    # imported here: machine.py imports this module at top level
    from .machine import _CONV_FNS, _box_matches, _int_div

    M = machine
    loaded = M.loaded
    costs = M.costs
    observer = M.observer
    obs_dyn = None if observer is None else observer.dyn
    obs_instr = None if observer is None else observer.instr
    faults = M.faults
    stack_limit = -1 if faults is None else faults.stack_limit
    call_cost = costs.call
    memtax = costs.large_array_extra

    def _raise_stack_overflow(depth):
        faults.record("stack_limit")
        raise make_exception(
            loaded,
            "StackOverflowException",
            f"call depth {depth} at limit {stack_limit}",
        )

    gen_env = {"_loaded": loaded, "_mkexc": make_exception}

    def build(pc, ins):
        gen = _make_single_gen(ins, pc, gen_env)
        if gen is not None:
            return gen
        o = ins.op
        cost = ins.cost
        a = ins.a
        b = ins.b
        c = ins.c
        dst = ins.dst
        kind = ins.kind
        nxt = pc + 1

        if o == mir.MOV:
            if kind == "r4":
                def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt):
                    st.spent += cost
                    v = R[a]
                    if type(v) is float:
                        v = r4(v)
                    R[dst] = v
                    return nxt
            else:
                def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt):
                    st.spent += cost
                    R[dst] = R[a]
                    return nxt
            return op_

        if o == mir.LDI:
            def op_(R, st, v=a, dst=dst, cost=cost, nxt=nxt):
                st.spent += cost
                R[dst] = v
                return nxt
            return op_

        if o in _BIN_OPS:
            fop = _BIN_OPS[o]
            if kind == "i4":
                wrap = i32
            elif kind == "i8":
                wrap = i64
            elif kind == "r4":
                wrap = r4
            else:
                wrap = None
            if wrap is None:
                def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt, fop=fop):
                    st.spent += cost
                    R[dst] = fop(R[a], R[b])
                    return nxt
            else:
                def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt,
                        fop=fop, wrap=wrap):
                    st.spent += cost
                    R[dst] = wrap(fop(R[a], R[b]))
                    return nxt
            return op_

        if o == mir.DIV:
            if kind in ("i4", "i8"):
                wrap = i32 if kind == "i4" else i64
                def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt, wrap=wrap):
                    st.spent += cost
                    y = R[b]
                    if y == 0:
                        raise make_exception(loaded, "DivideByZeroException")
                    R[dst] = wrap(_int_div(R[a], y))
                    return nxt
            else:
                fwrap = r4 if kind == "r4" else None
                def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt, fwrap=fwrap):
                    st.spent += cost
                    x = R[a]
                    y = R[b]
                    if y == 0.0:
                        if x == 0.0 or x != x:
                            q = float("nan")
                        else:
                            pos = (x > 0) == (math.copysign(1.0, y) > 0)
                            q = float("inf") if pos else float("-inf")
                    else:
                        q = x / y
                    R[dst] = fwrap(q) if fwrap is not None else q
                    return nxt
            return op_

        if o == mir.REM:
            if kind in ("i4", "i8"):
                def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt):
                    st.spent += cost
                    x = R[a]
                    y = R[b]
                    if y == 0:
                        raise make_exception(loaded, "DivideByZeroException")
                    R[dst] = x - _int_div(x, y) * y
                    return nxt
            else:
                def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt):
                    st.spent += cost
                    y = R[b]
                    R[dst] = math.fmod(R[a], y) if y != 0.0 else float("nan")
                    return nxt
            return op_

        if o in _BIT_OPS:
            fop = _BIT_OPS[o]
            def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt, fop=fop):
                st.spent += cost
                R[dst] = fop(R[a], R[b])
                return nxt
            return op_

        if o == mir.SHL:
            if kind == "i4":
                def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt):
                    st.spent += cost
                    R[dst] = i32(R[a] << (R[b] & 31))
                    return nxt
            else:
                def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt):
                    st.spent += cost
                    R[dst] = i64(R[a] << (R[b] & 63))
                    return nxt
            return op_

        if o == mir.SHR:
            mask = 31 if kind == "i4" else 63
            def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt, mask=mask):
                st.spent += cost
                R[dst] = R[a] >> (R[b] & mask)
                return nxt
            return op_

        if o == mir.SHRU:
            if kind == "i4":
                def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt):
                    st.spent += cost
                    R[dst] = i32((R[a] & 0xFFFFFFFF) >> (R[b] & 31))
                    return nxt
            else:
                def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt):
                    st.spent += cost
                    R[dst] = i64((R[a] & 0xFFFFFFFFFFFFFFFF) >> (R[b] & 63))
                    return nxt
            return op_

        if o == mir.NEG:
            if kind == "i4":
                def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt):
                    st.spent += cost
                    R[dst] = i32(-R[a])
                    return nxt
            elif kind == "i8":
                def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt):
                    st.spent += cost
                    R[dst] = i64(-R[a])
                    return nxt
            else:
                def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt):
                    st.spent += cost
                    R[dst] = -R[a]
                    return nxt
            return op_

        if o == mir.NOT:
            wrap = i32 if kind == "i4" else i64
            def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt, wrap=wrap):
                st.spent += cost
                R[dst] = wrap(~R[a])
                return nxt
            return op_

        if o == mir.CEQ or o == mir.CNE:
            on_nan = 0 if o == mir.CEQ else 1
            def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt, on_nan=on_nan):
                st.spent += cost
                x = R[a]
                y = R[b]
                if (type(x) is float and x != x) or (type(y) is float and y != y):
                    R[dst] = on_nan
                else:
                    eq = 1 if (x is y or x == y) else 0
                    R[dst] = eq if on_nan == 0 else 1 - eq
                return nxt
            return op_

        if o in _CMP_OPS:
            cmp = _CMP_OPS[o]
            def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt, cmp=cmp):
                st.spent += cost
                x = R[a]
                y = R[b]
                if (type(x) is float and x != x) or (type(y) is float and y != y):
                    R[dst] = 0
                else:
                    R[dst] = 1 if cmp(x, y) else 0
                return nxt
            return op_

        if o == mir.CONV:
            conv = _CONV_FNS[ins.extra]
            def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt, conv=conv):
                st.spent += cost
                R[dst] = conv(R[a])
                return nxt
            return op_

        if o == mir.JMP:
            def op_(R, st, cost=cost, t=ins.target):
                st.spent += cost
                return t
            return op_

        if o == mir.JTRUE:
            def op_(R, st, a=a, cost=cost, t=ins.target, nxt=nxt):
                st.spent += cost
                v = R[a]
                return t if (v is not None and v != 0) else nxt
            return op_

        if o == mir.JFALSE:
            def op_(R, st, a=a, cost=cost, t=ins.target, nxt=nxt):
                st.spent += cost
                v = R[a]
                return t if (v is None or v == 0) else nxt
            return op_

        if o == mir.JEQ or o == mir.JNE:
            want_eq = o == mir.JEQ
            def op_(R, st, a=a, b=b, cost=cost, t=ins.target, nxt=nxt,
                    want_eq=want_eq):
                st.spent += cost
                x = R[a]
                y = R[b]
                if (type(x) is float and x != x) or (type(y) is float and y != y):
                    taken = not want_eq
                else:
                    taken = (x is y or x == y) == want_eq
                return t if taken else nxt
            return op_

        if o in _JCC_OPS:
            cmp = _JCC_OPS[o]
            def op_(R, st, a=a, b=b, cost=cost, t=ins.target, nxt=nxt, cmp=cmp):
                st.spent += cost
                x = R[a]
                y = R[b]
                if (type(x) is float and x != x) or (type(y) is float and y != y):
                    return nxt
                return t if cmp(x, y) else nxt
            return op_

        if o == mir.SWITCH:
            targets = tuple(ins.extra)
            def op_(R, st, a=a, cost=cost, targets=targets, n=len(targets), nxt=nxt):
                st.spent += cost
                v = R[a]
                return targets[v] if 0 <= v < n else nxt
            return op_

        if o == mir.LDELEM:
            def op_(R, st, a=a, b=b, dst=dst, cost=cost, nxt=nxt):
                st.spent += cost
                arr = R[a]
                if arr is None:
                    raise make_exception(loaded, "NullReferenceException")
                idx = R[b]
                data = arr.data
                if idx < 0 or idx >= len(data):
                    raise make_exception(loaded, "IndexOutOfRangeException")
                if M.large_working_set:
                    st.spent += memtax
                    if obs_dyn is not None:
                        obs_dyn(fn, CAT_MEMTAX, memtax)
                R[dst] = data[idx]
                return nxt
            return op_

        if o == mir.STELEM:
            coerce = kind == "r4"
            def op_(R, st, a=a, b=b, c=c, cost=cost, nxt=nxt, coerce=coerce):
                st.spent += cost
                arr = R[a]
                if arr is None:
                    raise make_exception(loaded, "NullReferenceException")
                idx = R[b]
                data = arr.data
                if idx < 0 or idx >= len(data):
                    raise make_exception(loaded, "IndexOutOfRangeException")
                if M.large_working_set:
                    st.spent += memtax
                    if obs_dyn is not None:
                        obs_dyn(fn, CAT_MEMTAX, memtax)
                v = R[c]
                if coerce and type(v) is float:
                    v = r4(v)
                data[idx] = v
                return nxt
            return op_

        if o == mir.LDFLD:
            def op_(R, st, a=a, dst=dst, slot=ins.b, cost=cost, nxt=nxt):
                st.spent += cost
                obj = R[a]
                if obj is None:
                    raise make_exception(loaded, "NullReferenceException")
                R[dst] = obj.fields[slot]
                return nxt
            return op_

        if o == mir.STFLD:
            coerce = kind == "r4"
            def op_(R, st, a=a, c=c, slot=ins.b, cost=cost, nxt=nxt, coerce=coerce):
                st.spent += cost
                obj = R[a]
                if obj is None:
                    raise make_exception(loaded, "NullReferenceException")
                v = R[c]
                if coerce and type(v) is float:
                    v = r4(v)
                obj.fields[slot] = v
                return nxt
            return op_

        if o == mir.LDSFLD:
            rc, slot = ins.extra
            def op_(R, st, dst=dst, rc=rc, slot=slot, cost=cost, nxt=nxt):
                st.spent += cost
                R[dst] = rc.statics[slot]
                return nxt
            return op_

        if o == mir.STSFLD:
            rc, slot = ins.extra
            coerce = kind == "r4"
            def op_(R, st, c=c, rc=rc, slot=slot, cost=cost, nxt=nxt, coerce=coerce):
                st.spent += cost
                v = R[c]
                if coerce and type(v) is float:
                    v = r4(v)
                rc.statics[slot] = v
                return nxt
            return op_

        if o == mir.CALL:
            ckind = ins.extra[0]
            args_t = tuple(ins.args or ())

            if ckind == "intrinsic":
                _k, fn_i, cost_i, _ref = ins.extra
                def op_(R, st, cost=cost, cost_i=cost_i, fn_i=fn_i,
                        args_t=args_t, dst=dst, nxt=nxt):
                    st.frame.pc = nxt
                    st.spent += cost + cost_i
                    if obs_dyn is not None:
                        obs_dyn(fn, CAT_DISPATCH, cost_i)
                    M.cycles += st.spent
                    st.total += st.spent
                    st.spent = 0
                    argv = [R[v] for v in args_t]
                    result = fn_i(M, argv)
                    if dst >= 0:
                        R[dst] = result
                    return nxt
                return op_

            if ckind == "static":
                method = ins.extra[1]
                this_reg = args_t[0] if (not method.is_static and args_t) else -1
                def op_(R, st, cost=cost, method=method, args_t=args_t,
                        dst=dst, nxt=nxt, this_reg=this_reg):
                    st.frame.pc = nxt
                    st.spent += cost + call_cost
                    if this_reg >= 0 and R[this_reg] is None:
                        raise make_exception(loaded, "NullReferenceException")
                    th = st.thread
                    frames = th.frames
                    if 0 <= stack_limit <= len(frames):
                        _raise_stack_overflow(len(frames))
                    callee = M._function(method)
                    argv = [R[v] for v in args_t]
                    frames.append(Frame(callee, argv, ret_dst=dst))
                    if observer is not None:
                        obs_dyn(fn, CAT_DISPATCH, call_cost)
                        observer.enter(th, callee, M.cycles + st.spent)
                    return REBIND
                return op_

            if ckind == "virtual":
                ref = ins.extra[1]
                vcost = call_cost + costs.virtual_call_extra
                def op_(R, st, cost=cost, vcost=vcost, name=ref.name,
                        params=ref.param_types, args_t=args_t, dst=dst, nxt=nxt):
                    st.frame.pc = nxt
                    st.spent += cost + vcost
                    receiver = R[args_t[0]]
                    if receiver is None:
                        raise make_exception(loaded, "NullReferenceException")
                    method = receiver.rtclass.resolve_virtual(name, params)
                    th = st.thread
                    frames = th.frames
                    if 0 <= stack_limit <= len(frames):
                        _raise_stack_overflow(len(frames))
                    callee = M._function(method)
                    argv = [R[v] for v in args_t]
                    frames.append(Frame(callee, argv, ret_dst=dst))
                    if observer is not None:
                        obs_dyn(fn, CAT_DISPATCH, vcost)
                        observer.enter(th, callee, M.cycles + st.spent)
                    return REBIND
                return op_

            # thread / monitor ops
            _k, name, is_monitor = ins.extra
            if is_monitor:
                def op_(R, st, cost=cost, name=name, args_t=args_t, nxt=nxt):
                    st.frame.pc = nxt
                    st.spent += cost
                    M.cycles += st.spent
                    st.total += st.spent
                    st.spent = 0
                    argv = [R[v] for v in args_t]
                    M._monitor_op(st.thread, name, argv)
                    if st.thread.state is not RUNNABLE:
                        return EXIT
                    return nxt
                return op_

            def op_(R, st, cost=cost, name=name, args_t=args_t, dst=dst, nxt=nxt):
                st.frame.pc = nxt
                st.spent += cost
                M.cycles += st.spent
                st.total += st.spent
                st.spent = 0
                argv = [R[v] for v in args_t]
                result = M._thread_op(st.thread, name, argv)
                if result == "yield":
                    return EXIT
                if dst >= 0:
                    R[dst] = result
                if st.thread.state is not RUNNABLE:
                    return EXIT
                return nxt
            return op_

        if o == mir.RET:
            ret_reg = a if isinstance(a, int) and a >= 0 else -1
            def op_(R, st, cost=cost, ret_reg=ret_reg):
                st.spent += cost
                value = R[ret_reg] if ret_reg >= 0 else None
                th = st.thread
                frames = th.frames
                frames.pop()
                if observer is not None:
                    observer.exit(th, M.cycles + st.spent)
                if frames:
                    rd = st.frame.ret_dst
                    if rd >= 0:
                        frames[-1].R[rd] = value
                else:
                    M._finish_thread(th, value)
                return REBIND
            return op_

        if o == mir.NEWOBJ:
            rc, ctor = ins.extra
            size = rc.instance_size
            if ctor is None:
                def op_(R, st, cost=cost, rc=rc, size=size, dst=dst, nxt=nxt):
                    st.spent += cost
                    obj = loaded.new_instance(rc)
                    M.cycles += st.spent
                    st.total += st.spent
                    st.spent = 0
                    M._alloc_charge(size)
                    R[dst] = obj
                    return nxt
                return op_
            args_t = tuple(ins.args or ())
            def op_(R, st, cost=cost, rc=rc, size=size, ctor=ctor,
                    args_t=args_t, dst=dst, nxt=nxt):
                st.spent += cost
                obj = loaded.new_instance(rc)
                M.cycles += st.spent
                st.total += st.spent
                st.spent = 0
                M._alloc_charge(size)
                R[dst] = obj
                st.frame.pc = nxt
                st.spent += call_cost
                th = st.thread
                frames = th.frames
                if 0 <= stack_limit <= len(frames):
                    _raise_stack_overflow(len(frames))
                callee = M._function(ctor)
                argv = [obj] + [R[v] for v in args_t]
                frames.append(Frame(callee, argv, ret_dst=-1))
                if observer is not None:
                    obs_dyn(fn, CAT_DISPATCH, call_cost)
                    observer.enter(th, callee, M.cycles + st.spent)
                return REBIND
            return op_

        if o == mir.NEWARR:
            def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt, elem=ins.extra):
                st.spent += cost
                length = R[a]
                M.cycles += st.spent
                st.total += st.spent
                st.spent = 0
                R[dst] = M._new_szarray(elem, length)
                return nxt
            return op_

        if o == mir.NEWARR_MD:
            args_t = tuple(ins.args or ())
            def op_(R, st, args_t=args_t, dst=dst, cost=cost, nxt=nxt,
                    elem=ins.extra):
                st.spent += cost
                dims = [R[v] for v in args_t]
                if any(d < 0 for d in dims):
                    raise make_exception(loaded, "ArgumentException", "negative length")
                arr = MDArray(elem, dims)
                M.cycles += st.spent
                st.total += st.spent
                st.spent = 0
                M._alloc_charge(16 + 8 * len(arr.data))
                R[dst] = arr
                return nxt
            return op_

        if o == mir.LDLEN:
            def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt):
                st.spent += cost
                arr = R[a]
                if arr is None:
                    raise make_exception(loaded, "NullReferenceException")
                R[dst] = arr.length
                return nxt
            return op_

        if o == mir.LDELEM_MD:
            args_t = tuple(ins.args or ())
            def op_(R, st, a=a, args_t=args_t, dst=dst, cost=cost, nxt=nxt):
                st.spent += cost
                arr = R[a]
                if arr is None:
                    raise make_exception(loaded, "NullReferenceException")
                flat = arr.flat_index([R[v] for v in args_t])
                if flat < 0:
                    raise make_exception(loaded, "IndexOutOfRangeException")
                if M.large_working_set:
                    st.spent += memtax
                    if obs_dyn is not None:
                        obs_dyn(fn, CAT_MEMTAX, memtax)
                R[dst] = arr.data[flat]
                return nxt
            return op_

        if o == mir.STELEM_MD:
            args_t = tuple(ins.args or ())
            coerce = kind == "r4"
            def op_(R, st, a=a, c=c, args_t=args_t, cost=cost, nxt=nxt,
                    coerce=coerce):
                st.spent += cost
                arr = R[a]
                if arr is None:
                    raise make_exception(loaded, "NullReferenceException")
                flat = arr.flat_index([R[v] for v in args_t])
                if flat < 0:
                    raise make_exception(loaded, "IndexOutOfRangeException")
                if M.large_working_set:
                    st.spent += memtax
                    if obs_dyn is not None:
                        obs_dyn(fn, CAT_MEMTAX, memtax)
                v = R[c]
                if coerce and type(v) is float:
                    v = r4(v)
                arr.data[flat] = v
                return nxt
            return op_

        if o == mir.BOX:
            tname = ins.extra.name
            def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt, tname=tname):
                st.spent += cost
                M._alloc_charge(16)
                R[dst] = BoxedValue(tname, R[a])
                return nxt
            return op_

        if o == mir.UNBOX:
            t, _rc = ins.extra
            if isinstance(t, cts.NamedType):
                def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt, tname=t.name):
                    st.spent += cost
                    v = R[a]
                    if v is None:
                        raise make_exception(loaded, "NullReferenceException")
                    if not isinstance(v, BoxedValue):
                        raise make_exception(loaded, "InvalidCastException")
                    if (
                        not isinstance(v.value, StructValue)
                        or v.value.rtclass.name != tname
                    ):
                        raise make_exception(loaded, "InvalidCastException")
                    R[dst] = v.value.copy()
                    return nxt
            else:
                def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt, tname=t.name):
                    st.spent += cost
                    v = R[a]
                    if v is None:
                        raise make_exception(loaded, "NullReferenceException")
                    if not isinstance(v, BoxedValue):
                        raise make_exception(loaded, "InvalidCastException")
                    if not _box_matches(v.type_name, tname):
                        raise make_exception(loaded, "InvalidCastException")
                    R[dst] = v.value
                    return nxt
            return op_

        if o == mir.CASTCLASS or o == mir.ISINST:
            t, rc = ins.extra
            if o == mir.CASTCLASS:
                def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt, t=t, rc=rc):
                    st.spent += cost
                    v = R[a]
                    if v is not None and not M._isinst(v, t, rc):
                        raise make_exception(loaded, "InvalidCastException")
                    R[dst] = v
                    return nxt
            else:
                def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt, t=t, rc=rc):
                    st.spent += cost
                    v = R[a]
                    R[dst] = v if (v is not None and M._isinst(v, t, rc)) else None
                    return nxt
            return op_

        if o == mir.STRUCT_COPY:
            per_field = costs.struct_copy_per_field
            def op_(R, st, a=a, dst=dst, cost=cost, nxt=nxt, per_field=per_field):
                st.spent += cost
                v = R[a]
                if isinstance(v, StructValue):
                    extra = per_field * len(v.fields)
                    st.spent += extra
                    if obs_dyn is not None:
                        obs_dyn(fn, CAT_EXECUTE, extra)
                    R[dst] = v.copy()
                else:
                    R[dst] = v
                return nxt
            return op_

        if o == mir.THROW:
            def op_(R, st, a=a, cost=cost):
                st.spent += cost
                v = R[a]
                if v is None:
                    raise make_exception(loaded, "NullReferenceException")
                raise GuestException(v)
            return op_

        if o == mir.RETHROW:
            def op_(R, st, cost=cost):
                st.spent += cost
                exc = st.frame.exc
                if exc is None:
                    raise VMError("rethrow with no active exception")
                raise GuestException(exc)
            return op_

        if o == mir.LEAVE:
            def op_(R, st, cost=cost, mypc=pc, target=ins.target):
                st.spent += cost
                f = st.frame
                f.pc = mypc
                M._leave(st.thread, f, target)
                return f.pc
            return op_

        if o == mir.ENDFINALLY:
            def op_(R, st, cost=cost, mypc=pc):
                st.spent += cost
                f = st.frame
                f.pc = mypc
                M.cycles += st.spent
                st.total += st.spent
                st.spent = 0
                M._end_finally(st.thread, f)
                return REBIND
            return op_

        if o == mir.NOP:
            def op_(R, st, cost=cost, nxt=nxt):
                st.spent += cost
                return nxt
            return op_

        raise VMError(f"unhandled MIR op {mir.name(o)}")  # pragma: no cover

    code = fn.code
    ops = [build(pc, ins) for pc, ins in enumerate(code)]

    if obs_instr is not None:
        # classic fires observer.instr before executing each instruction;
        # wrap every closure so the hook stream is order-identical
        def wrap(inner, o, cost):
            def op_(R, st, inner=inner, o=o, cost=cost):
                obs_instr(fn, o, cost)
                return inner(R, st)
            return op_

        ops = [wrap(ops[pc], ins.op, ins.cost) for pc, ins in enumerate(code)]

    if M.dispatch == "threaded" and observer is None:
        targets = getattr(fn, "branch_targets", None)
        if targets is None:
            targets = mir.branch_targets(fn)
        for i, length in fuse_plan(code, fn.regions, targets, faults is not None):
            fused = _make_fused_gen(code, i, length, gen_env)
            if fused is not None:
                ops[i] = fused

    return ops


# ---------------------------------------------------------------------------
# quantum driver
# ---------------------------------------------------------------------------


def step_thread(machine, thread, budget: int) -> None:
    """Threaded-code replacement for ``Machine._step_thread``.

    Structure mirrors the classic loop exactly: bind the top frame, run
    closures until a sentinel / the budget trips / a guest exception
    unwinds, flush ``spent`` and the instruction count per binding, and let
    the outer loop re-bind.  See the module docstring for the equivalence
    contract.
    """
    faults = machine.faults
    observer = machine.observer
    loaded = machine.loaded
    cache = machine._threaded_code
    # instruction burst bound: same formula as classic — a rebind flushes
    # ``spent`` into the (possibly float) cycle counter, so the flush
    # cadence is part of the bit-identity contract
    burst = budget >> 1
    if burst > 4096:
        burst = 4096
    elif burst < 8:
        burst = 8
    st = ExecState(machine, thread, budget, burst)
    frames = thread.frames
    while frames and st.total < budget and thread.state is RUNNABLE:
        frame = frames[-1]
        st.frame = frame
        fn = frame.fn
        ops = cache.get(id(fn))
        if ops is None:
            ops = build_ops(machine, fn)
            cache[id(fn)] = ops
        R = frame.R
        pc = frame.pc
        st.icount = 0
        try:
            if faults is not None and faults.pending is not None:
                injected = faults.take_pending(thread)
                if injected is not None:
                    # an exception seeded during unwind fires at the entry
                    # of the finally handler the dispatcher just targeted
                    raise make_exception(loaded, injected[0], injected[1])
            while True:
                st.icount += 1
                n = ops[pc](R, st)
                if n >= 0:
                    if st.total + st.spent >= budget or st.icount >= burst:
                        frame.pc = n
                        break
                    pc = n
                elif n == REBIND:
                    break
                else:
                    # EXIT: blocked on a monitor / yielded.  Classic
                    # returns before its instruction flush, dropping the
                    # binding's icount — reproduce that exactly.
                    return
        except GuestException as guest:
            # a fused run records the exact raising pc (and flushes its
            # hoisted bookkeeping) before the exception unwinds; every
            # other closure raises with the driver's pc current
            rp = st.raise_pc
            if rp >= 0:
                frame.pc = rp
                st.raise_pc = -1
            else:
                frame.pc = pc
            machine.cycles += st.spent
            st.total += st.spent
            st.spent = 0
            machine.instructions += st.icount
            if observer is not None:
                observer.throw(machine.cycles)
            machine._throw(thread, guest.obj)
            continue
        machine.cycles += st.spent
        st.total += st.spent
        st.spent = 0
        machine.instructions += st.icount
