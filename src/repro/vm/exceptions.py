"""Managed exception plumbing shared by both execution engines."""

from __future__ import annotations

from typing import Optional

from ..errors import VMError
from .loader import LoadedAssembly, RuntimeClass
from .objects import ObjectInstance


class GuestException(Exception):
    """Host-side carrier for an in-flight managed exception."""

    __slots__ = ("obj",)

    def __init__(self, obj: ObjectInstance) -> None:
        self.obj = obj
        super().__init__(obj.rtclass.name)

    @property
    def type_name(self) -> str:
        return self.obj.rtclass.name

    def message(self) -> str:
        slot = self.obj.rtclass.field_slots.get("Message")
        if slot is None:
            return ""
        value = self.obj.fields[slot]
        return value if isinstance(value, str) else ""


def make_exception(
    loaded: LoadedAssembly, class_name: str, message: str = ""
) -> GuestException:
    """Create a managed exception instance without running its constructor
    (runtime-raised exceptions set ``Message`` directly, like the CLR's
    fast paths for ``NullReferenceException`` etc.)."""
    rc = loaded.get_class(class_name)
    obj = loaded.new_instance(rc)
    slot = rc.field_slots.get("Message")
    if slot is not None:
        obj.fields[slot] = message
    return GuestException(obj)


def matches(exc_class: RuntimeClass, catch_class: RuntimeClass) -> bool:
    """Catch-clause type test: runtime class IS-A catch type."""
    return exc_class.is_subclass_of(catch_class)
