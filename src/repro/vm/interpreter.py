"""Direct CIL interpreter — the *semantic reference* engine.

Single-threaded, no cycle accounting beyond a coarse instruction counter:
used to validate benchmark computations (paper section 3.4) and as the
differential-testing oracle for the JIT pipeline.  The measured engine is
:mod:`repro.vm.machine` (MIR executor + runtime profile).

Design notes:

* Guest calls use host recursion (bounded by the scaled benchmark sizes).
* int32/int64 arithmetic wraps via :mod:`repro.vm.values`; float32 results
  round through single precision.  Integer division truncates toward zero
  (C semantics), unlike Python's floor division.
* Exceptions follow the CLI two-pass model: find the innermost matching
  catch, then unwind through intervening finally handlers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..cil import cts, opcodes as op
from ..cil.instructions import FieldRef, MethodRef
from ..cil.metadata import Assembly, MethodDef
from ..cil.typesim import annotate
from ..errors import VMError
from .bench import BenchRecorder
from .exceptions import GuestException, make_exception, matches
from .intrinsics import INTRINSICS, JavaRandom, Serializer, THREADING_CLASSES
from .loader import LoadedAssembly
from .objects import (
    BoxedValue,
    MDArray,
    ObjectInstance,
    SZArray,
    StructValue,
    get_monitor,
)
from .values import (
    float_to_i32,
    float_to_i64,
    i8 as wrap_i8,
    i16 as wrap_i16,
    i32,
    i64,
    r4,
    u8 as wrap_u8,
    u16 as wrap_u16,
)


def _int_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_rem(a: int, b: int) -> int:
    return a - _int_div(a, b) * b


class Interpreter:
    """Executes a loaded assembly by walking CIL directly."""

    def __init__(self, loaded: LoadedAssembly, max_instructions: int = 500_000_000):
        self.loaded = loaded
        self.icount = 0
        self.max_instructions = max_instructions
        self.stdout: List[str] = []
        self.rng = JavaRandom()
        self.serializer = Serializer()
        self.bench = BenchRecorder(self.now)
        self.allocated_bytes = 0
        # static type annotation cache: annotate() is a whole-body pass, so
        # re-running it per _exec entry made every finally handler (which
        # executes through a nested _exec on the shared frame) re-derive
        # the same table; keyed by method identity like the JIT code cache
        self._kinds: Dict[int, dict] = {}
        # single-threaded monitor bookkeeping (reentrancy only)
        self._monitor_depth: Dict[int, int] = {}

    # ----------------------------------------------------------- host hooks

    def now(self) -> int:
        return self.icount

    def charge_units(self, kind: str, n: int) -> None:
        self.icount += n  # coarse: one tick per unit

    def gc_collect(self) -> None:
        return None

    def total_allocated(self) -> int:
        return self.allocated_bytes

    def thread_count(self) -> int:
        return 1

    # ---------------------------------------------------------------- public

    def run(self, entry: Optional[MethodDef] = None, args: Optional[List] = None):
        """Run static constructors then the entry point; returns its value."""
        for cctor in self.loaded.static_constructors():
            self.call(cctor, [])
        entry = entry or self.loaded.entry_point
        if entry is None:
            raise VMError("assembly has no entry point")
        return self.call(entry, list(args or []))

    def call_named(self, class_name: str, method_name: str, args: Optional[List] = None):
        m = self.loaded.assembly.find_method(class_name, method_name)
        return self.call(m, list(args or []))

    # ----------------------------------------------------------------- calls

    def call(self, method: MethodDef, args: List):
        if method.body:
            return self._exec(method, args)
        raise VMError(f"cannot interpret bodyless method {method.full_name}")

    def _invoke_ref(self, ref: MethodRef, args: List, virtual: bool):
        if ref.class_name in THREADING_CLASSES:
            return self._threading_intrinsic(ref, args)
        key = (ref.class_name, ref.name, len(ref.param_types))
        fn = INTRINSICS.get(key)
        if fn is not None:
            return fn(self, args)
        method = self.loaded.resolve_method(ref)
        if virtual and not ref.is_static:
            receiver = args[0]
            if receiver is None:
                raise make_exception(self.loaded, "NullReferenceException")
            if isinstance(receiver, (ObjectInstance, StructValue)):
                method = receiver.rtclass.resolve_virtual(ref.name, ref.param_types)
        elif not ref.is_static and args and args[0] is None:
            raise make_exception(self.loaded, "NullReferenceException")
        return self.call(method, args)

    def _threading_intrinsic(self, ref: MethodRef, args: List):
        """Single-threaded degenerate semantics: monitors are reentrant
        no-ops, thread creation is unsupported."""
        name = ref.name
        if ref.class_name.endswith("Monitor"):
            if not args or args[0] is None:
                raise make_exception(self.loaded, "NullReferenceException")
            oid = id(args[0])
            if name == "Enter":
                self._monitor_depth[oid] = self._monitor_depth.get(oid, 0) + 1
                return None
            if name == "Exit":
                depth = self._monitor_depth.get(oid, 0)
                if depth <= 0:
                    raise make_exception(
                        self.loaded, "SynchronizationException", "Exit without Enter"
                    )
                self._monitor_depth[oid] = depth - 1
                return None
            if name in ("Pulse", "PulseAll"):
                return None
            if name == "Wait":
                raise VMError("Monitor.Wait requires the threaded engine")
        raise VMError(f"{ref.full_name} requires the threaded engine")

    # ------------------------------------------------------------- allocation

    def _new_szarray(self, elem, length: int) -> SZArray:
        if length < 0:
            raise make_exception(self.loaded, "ArgumentException", "negative length")
        arr = SZArray(elem, length)
        if isinstance(elem, cts.NamedType) and elem.is_value_type:
            rc = self.loaded.get_class(elem.name)
            arr.data = [self.loaded.new_instance(rc) for _ in range(length)]
        self.allocated_bytes += 16 + 8 * length
        return arr

    def _new_mdarray(self, elem, dims) -> MDArray:
        if any(d < 0 for d in dims):
            raise make_exception(self.loaded, "ArgumentException", "negative length")
        arr = MDArray(elem, dims)
        self.allocated_bytes += 16 + 8 * len(arr.data)
        return arr

    # ------------------------------------------------------------------ body

    def _exec(self, method: MethodDef, args: List, entry_pc: int = 0,
              locals_: Optional[List] = None, until_endfinally: bool = False):
        """Execute ``method`` from ``entry_pc``.  With ``until_endfinally``
        the loop runs a finally handler in the caller's frame (shared
        ``locals_``) and returns when its ``endfinally`` is reached."""
        body = method.body
        kinds = self._kinds.get(id(method))
        if kinds is None:
            kinds = self._kinds.setdefault(id(method), annotate(method))
        loaded = self.loaded
        if locals_ is None:
            locals_ = [None] * len(method.locals)
            for i, lv in enumerate(method.locals):
                t = lv.var_type
                if t.is_float:
                    locals_[i] = 0.0
                elif t.is_primitive:
                    locals_[i] = 0
        stack: List = []
        pc = entry_pc
        regions = method.regions
        frame_exc = None

        while True:
            self.icount += 1
            if self.icount > self.max_instructions:
                raise VMError(
                    f"instruction budget exceeded in {method.full_name}"
                )
            instr = body[pc]
            code = instr.opcode
            try:
                # ---- constants / locals --------------------------------
                if code == op.LDLOC:
                    stack.append(locals_[instr.operand])
                elif code == op.LDC_I4 or code == op.LDC_I8:
                    stack.append(instr.operand)
                elif code == op.LDC_R8:
                    stack.append(instr.operand)
                elif code == op.LDC_R4:
                    stack.append(r4(instr.operand))
                elif code == op.STLOC:
                    v = stack.pop()
                    if kinds.get(pc) == "r4" and isinstance(v, float):
                        v = r4(v)
                    locals_[instr.operand] = v
                elif code == op.LDARG:
                    stack.append(args[instr.operand])
                elif code == op.STARG:
                    v = stack.pop()
                    if kinds.get(pc) == "r4" and isinstance(v, float):
                        v = r4(v)
                    args[instr.operand] = v
                elif code == op.LDSTR:
                    stack.append(instr.operand)
                elif code == op.LDNULL:
                    stack.append(None)

                # ---- arithmetic ----------------------------------------
                elif code == op.ADD:
                    b = stack.pop(); a = stack.pop()
                    k = kinds[pc]
                    if k == "i4":
                        stack.append(i32(a + b))
                    elif k == "i8":
                        stack.append(i64(a + b))
                    elif k == "r4":
                        stack.append(r4(a + b))
                    else:
                        stack.append(a + b)
                elif code == op.SUB:
                    b = stack.pop(); a = stack.pop()
                    k = kinds[pc]
                    if k == "i4":
                        stack.append(i32(a - b))
                    elif k == "i8":
                        stack.append(i64(a - b))
                    elif k == "r4":
                        stack.append(r4(a - b))
                    else:
                        stack.append(a - b)
                elif code == op.MUL:
                    b = stack.pop(); a = stack.pop()
                    k = kinds[pc]
                    if k == "i4":
                        stack.append(i32(a * b))
                    elif k == "i8":
                        stack.append(i64(a * b))
                    elif k == "r4":
                        stack.append(r4(a * b))
                    else:
                        stack.append(a * b)
                elif code == op.DIV:
                    b = stack.pop(); a = stack.pop()
                    k = kinds[pc]
                    if k in ("i4", "i8"):
                        if b == 0:
                            raise make_exception(loaded, "DivideByZeroException")
                        q = _int_div(a, b)
                        stack.append(i32(q) if k == "i4" else i64(q))
                    else:
                        if b == 0.0:
                            if a == 0.0 or a != a:
                                result = float("nan")
                            else:
                                sign = (a > 0) == (not math.copysign(1, b) < 0)
                                result = float("inf") if sign else float("-inf")
                            stack.append(r4(result) if k == "r4" else result)
                        else:
                            q = a / b
                            stack.append(r4(q) if k == "r4" else q)
                elif code == op.REM:
                    b = stack.pop(); a = stack.pop()
                    k = kinds[pc]
                    if k in ("i4", "i8"):
                        if b == 0:
                            raise make_exception(loaded, "DivideByZeroException")
                        stack.append(_int_rem(a, b))
                    else:
                        stack.append(math.fmod(a, b) if b != 0.0 else float("nan"))
                elif code == op.NEG:
                    a = stack.pop()
                    k = kinds[pc]
                    if k == "i4":
                        stack.append(i32(-a))
                    elif k == "i8":
                        stack.append(i64(-a))
                    else:
                        stack.append(-a)
                elif code == op.AND:
                    b = stack.pop(); a = stack.pop()
                    stack.append(a & b)
                elif code == op.OR:
                    b = stack.pop(); a = stack.pop()
                    stack.append(a | b)
                elif code == op.XOR:
                    b = stack.pop(); a = stack.pop()
                    stack.append(a ^ b)
                elif code == op.NOT:
                    a = stack.pop()
                    k = kinds[pc]
                    stack.append(i32(~a) if k == "i4" else i64(~a))
                elif code == op.SHL:
                    b = stack.pop(); a = stack.pop()
                    k = kinds[pc]
                    if k == "i4":
                        stack.append(i32(a << (b & 31)))
                    else:
                        stack.append(i64(a << (b & 63)))
                elif code == op.SHR:
                    b = stack.pop(); a = stack.pop()
                    k = kinds[pc]
                    stack.append(a >> (b & (31 if k == "i4" else 63)))
                elif code == op.SHR_UN:
                    b = stack.pop(); a = stack.pop()
                    k = kinds[pc]
                    if k == "i4":
                        stack.append(i32((a & 0xFFFFFFFF) >> (b & 31)))
                    else:
                        stack.append(i64((a & 0xFFFFFFFFFFFFFFFF) >> (b & 63)))

                # ---- comparisons ---------------------------------------
                elif code == op.CEQ:
                    b = stack.pop(); a = stack.pop()
                    if isinstance(a, float) and a != a:
                        stack.append(0)
                    elif isinstance(b, float) and b != b:
                        stack.append(0)
                    else:
                        stack.append(1 if a is b or a == b else 0)
                elif code == op.CGT:
                    b = stack.pop(); a = stack.pop()
                    stack.append(1 if _ordered_gt(a, b) else 0)
                elif code == op.CLT:
                    b = stack.pop(); a = stack.pop()
                    stack.append(1 if _ordered_lt(a, b) else 0)

                # ---- conversions ---------------------------------------
                elif code == op.CONV_I4:
                    a = stack.pop()
                    stack.append(float_to_i32(a) if isinstance(a, float) else i32(a))
                elif code == op.CONV_I8:
                    a = stack.pop()
                    stack.append(float_to_i64(a) if isinstance(a, float) else i64(a))
                elif code == op.CONV_R4:
                    stack.append(r4(float(stack.pop())))
                elif code == op.CONV_R8:
                    stack.append(float(stack.pop()))
                elif code == op.CONV_I1:
                    a = stack.pop()
                    stack.append(wrap_i8(float_to_i32(a) if isinstance(a, float) else a))
                elif code == op.CONV_U1:
                    a = stack.pop()
                    stack.append(wrap_u8(float_to_i32(a) if isinstance(a, float) else a))
                elif code == op.CONV_I2:
                    a = stack.pop()
                    stack.append(wrap_i16(float_to_i32(a) if isinstance(a, float) else a))
                elif code == op.CONV_U2:
                    a = stack.pop()
                    stack.append(wrap_u16(float_to_i32(a) if isinstance(a, float) else a))

                # ---- control flow --------------------------------------
                elif code == op.BR:
                    pc = instr.operand
                    continue
                elif code == op.BRTRUE:
                    v = stack.pop()
                    if v is not None and v != 0:
                        pc = instr.operand
                        continue
                elif code == op.BRFALSE:
                    v = stack.pop()
                    if v is None or v == 0:
                        pc = instr.operand
                        continue
                elif code in (op.BEQ, op.BNE, op.BGE, op.BGT, op.BLE, op.BLT):
                    b = stack.pop(); a = stack.pop()
                    if _branch_taken(code, a, b):
                        pc = instr.operand
                        continue
                elif code == op.SWITCH:
                    v = stack.pop()
                    targets = instr.operand
                    if 0 <= v < len(targets):
                        pc = targets[v]
                        continue
                elif code == op.RET:
                    if method.return_type is cts.VOID:
                        return None
                    return stack.pop()

                # ---- calls ----------------------------------------------
                elif code == op.CALL or code == op.CALLVIRT:
                    ref: MethodRef = instr.operand
                    n = len(ref.param_types) + (0 if ref.is_static else 1)
                    call_args = stack[len(stack) - n:] if n else []
                    if n:
                        del stack[len(stack) - n:]
                    result = self._invoke_ref(ref, call_args, code == op.CALLVIRT)
                    if ref.return_type is not cts.VOID:
                        stack.append(result)
                elif code == op.NEWOBJ:
                    ref = instr.operand
                    n = len(ref.param_types)
                    call_args = stack[len(stack) - n:] if n else []
                    if n:
                        del stack[len(stack) - n:]
                    rc = loaded.get_class(ref.class_name)
                    obj = loaded.new_instance(rc)
                    self.allocated_bytes += rc.instance_size
                    ctor = rc.find_method(".ctor", ref.param_types)
                    if ctor is not None:
                        self.call(ctor, [obj] + call_args)
                    elif n:
                        raise VMError(f"no matching constructor on {rc.name}")
                    stack.append(obj)

                # ---- objects / fields -----------------------------------
                elif code == op.LDFLD:
                    obj = stack.pop()
                    if obj is None:
                        raise make_exception(loaded, "NullReferenceException")
                    fref: FieldRef = instr.operand
                    _rc, slot = loaded.resolve_field(fref)
                    stack.append(obj.fields[slot])
                elif code == op.STFLD:
                    v = stack.pop()
                    obj = stack.pop()
                    if obj is None:
                        raise make_exception(loaded, "NullReferenceException")
                    fref = instr.operand
                    _rc, slot = loaded.resolve_field(fref)
                    if kinds.get(pc) == "r4" and isinstance(v, float):
                        v = r4(v)
                    obj.fields[slot] = v
                elif code == op.LDSFLD:
                    fref = instr.operand
                    rc, slot = loaded.resolve_field(fref)
                    stack.append(rc.statics[slot])
                elif code == op.STSFLD:
                    v = stack.pop()
                    fref = instr.operand
                    rc, slot = loaded.resolve_field(fref)
                    if kinds.get(pc) == "r4" and isinstance(v, float):
                        v = r4(v)
                    rc.statics[slot] = v

                # ---- arrays ---------------------------------------------
                elif code == op.NEWARR:
                    length = stack.pop()
                    stack.append(self._new_szarray(instr.operand, length))
                elif code == op.LDLEN:
                    arr = stack.pop()
                    if arr is None:
                        raise make_exception(loaded, "NullReferenceException")
                    stack.append(arr.length)
                elif code == op.LDELEM:
                    index = stack.pop()
                    arr = stack.pop()
                    if arr is None:
                        raise make_exception(loaded, "NullReferenceException")
                    data = arr.data
                    if index < 0 or index >= len(data):
                        raise make_exception(loaded, "IndexOutOfRangeException")
                    stack.append(data[index])
                elif code == op.STELEM:
                    v = stack.pop()
                    index = stack.pop()
                    arr = stack.pop()
                    if arr is None:
                        raise make_exception(loaded, "NullReferenceException")
                    data = arr.data
                    if index < 0 or index >= len(data):
                        raise make_exception(loaded, "IndexOutOfRangeException")
                    if kinds.get(pc) == "r4" and isinstance(v, float):
                        v = r4(v)
                    data[index] = v
                elif code == op.NEWARR_MD:
                    elem, rank = instr.operand
                    dims = stack[len(stack) - rank:]
                    del stack[len(stack) - rank:]
                    stack.append(self._new_mdarray(elem, dims))
                elif code == op.LDELEM_MD:
                    elem, rank = instr.operand
                    idxs = stack[len(stack) - rank:]
                    del stack[len(stack) - rank:]
                    arr = stack.pop()
                    if arr is None:
                        raise make_exception(loaded, "NullReferenceException")
                    flat = arr.flat_index(idxs)
                    if flat < 0:
                        raise make_exception(loaded, "IndexOutOfRangeException")
                    stack.append(arr.data[flat])
                elif code == op.STELEM_MD:
                    elem, rank = instr.operand
                    v = stack.pop()
                    idxs = stack[len(stack) - rank:]
                    del stack[len(stack) - rank:]
                    arr = stack.pop()
                    if arr is None:
                        raise make_exception(loaded, "NullReferenceException")
                    flat = arr.flat_index(idxs)
                    if flat < 0:
                        raise make_exception(loaded, "IndexOutOfRangeException")
                    if kinds.get(pc) == "r4" and isinstance(v, float):
                        v = r4(v)
                    arr.data[flat] = v

                # ---- boxing / casts --------------------------------------
                elif code == op.BOX:
                    v = stack.pop()
                    self.allocated_bytes += 16
                    stack.append(BoxedValue(instr.operand.name, v))
                elif code == op.UNBOX:
                    v = stack.pop()
                    if v is None:
                        raise make_exception(loaded, "NullReferenceException")
                    if not isinstance(v, BoxedValue):
                        raise make_exception(loaded, "InvalidCastException")
                    target = instr.operand
                    if isinstance(target, cts.NamedType):
                        if not isinstance(v.value, StructValue) or v.value.rtclass.name != target.name:
                            raise make_exception(loaded, "InvalidCastException")
                        stack.append(v.value.copy())
                    else:
                        if not _box_matches(v.type_name, target.name):
                            raise make_exception(loaded, "InvalidCastException")
                        stack.append(v.value)
                elif code == op.CASTCLASS:
                    v = stack.pop()
                    if v is not None and not self._isinst(v, instr.operand):
                        raise make_exception(loaded, "InvalidCastException")
                    stack.append(v)
                elif code == op.ISINST:
                    v = stack.pop()
                    stack.append(v if v is not None and self._isinst(v, instr.operand) else None)
                elif code == op.STRUCT_COPY:
                    v = stack.pop()
                    stack.append(v.copy() if isinstance(v, StructValue) else v)
                elif code == op.DUP:
                    stack.append(stack[-1])
                elif code == op.POP:
                    stack.pop()
                elif code == op.NOP:
                    pass

                # ---- exceptions -----------------------------------------
                elif code == op.THROW:
                    v = stack.pop()
                    if v is None:
                        raise make_exception(loaded, "NullReferenceException")
                    raise GuestException(v)
                elif code == op.RETHROW:
                    if frame_exc is None:
                        raise VMError("rethrow with no active exception")
                    raise GuestException(frame_exc)
                elif code == op.LEAVE:
                    target = instr.operand
                    stack.clear()
                    # run intervening finally handlers, innermost first
                    pending = [
                        r for r in regions
                        if r.kind == "finally"
                        and r.covers(pc)
                        and not r.covers(target)
                    ]
                    pending.sort(key=lambda r: r.try_start, reverse=True)
                    for r in pending:
                        self._run_finally(method, r, args, locals_, kinds)
                    pc = target
                    continue
                elif code == op.ENDFINALLY:
                    if until_endfinally:
                        return None
                    raise VMError("endfinally outside handler execution")
                else:  # pragma: no cover - defensive
                    raise VMError(f"unhandled opcode {instr.mnemonic}")
            except GuestException as guest:
                new_pc = self._dispatch_exception(
                    method, pc, guest, args, locals_, kinds, stack
                )
                if new_pc is None:
                    raise
                frame_exc = guest.obj
                pc = new_pc
                continue
            pc += 1

    def _dispatch_exception(self, method, pc, guest, args, locals_, kinds, stack):
        """Find a matching catch in this frame; run intervening finallies.
        Returns the new pc or None to propagate."""
        regions = method.regions
        exc_rc = guest.obj.rtclass
        # innermost-first ordering by try extent
        candidates = [r for r in regions if r.covers(pc)]
        candidates.sort(key=lambda r: (r.try_end - r.try_start, r.try_start))
        target = None
        for r in candidates:
            if r.kind == "catch":
                catch_rc = self.loaded.get_class(r.catch_type)
                if matches(exc_rc, catch_rc):
                    target = r
                    break
        if target is None:
            # unwind: run all finally handlers covering pc, innermost first
            finallies = [r for r in candidates if r.kind == "finally"]
            for r in finallies:
                self._run_finally(method, r, args, locals_, kinds)
            return None
        # second pass: finallies nested inside the catch's protected region
        finallies = [
            r
            for r in candidates
            if r.kind == "finally"
            and (r.try_end - r.try_start) < (target.try_end - target.try_start)
        ]
        for r in finallies:
            self._run_finally(method, r, args, locals_, kinds)
        stack.clear()
        stack.append(guest.obj)
        return target.handler_start

    def _run_finally(self, method, region, args, locals_, kinds):
        """Execute a finally handler to its endfinally, sharing the frame's
        locals and args (full opcode support via the main dispatch loop)."""
        self._exec(method, args, entry_pc=region.handler_start,
                   locals_=locals_, until_endfinally=True)

    def _isinst(self, v, target) -> bool:
        if isinstance(target, cts.ObjectType):
            return True
        if isinstance(v, str):
            return isinstance(target, cts.StringType)
        if isinstance(v, (SZArray, MDArray)):
            return target.is_array
        if isinstance(v, BoxedValue):
            return isinstance(target, cts.NamedType) and v.type_name == target.name
        if isinstance(v, ObjectInstance):
            if not isinstance(target, cts.NamedType):
                return False
            target_rc = self.loaded.classes.get(target.name)
            return target_rc is not None and v.rtclass.is_subclass_of(target_rc)
        return False


def _ordered_gt(a, b) -> bool:
    if isinstance(a, float) and a != a:
        return False
    if isinstance(b, float) and b != b:
        return False
    return a > b


def _ordered_lt(a, b) -> bool:
    if isinstance(a, float) and a != a:
        return False
    if isinstance(b, float) and b != b:
        return False
    return a < b


def _branch_taken(code: int, a, b) -> bool:
    nan = (isinstance(a, float) and a != a) or (isinstance(b, float) and b != b)
    if code == op.BEQ:
        return not nan and (a is b or a == b)
    if code == op.BNE:
        return nan or not (a is b or a == b)
    if nan:
        return False
    if code == op.BGE:
        return a >= b
    if code == op.BGT:
        return a > b
    if code == op.BLE:
        return a <= b
    return a < b  # BLT


def _box_matches(box_type: str, target_name: str) -> bool:
    if box_type == target_name:
        return True
    group_int = {"int32", "int16", "int8", "uint8", "uint16", "char", "bool"}
    return box_type in group_int and target_name in group_int


def run_source(source: str, entry_class: Optional[str] = None):
    """Convenience: compile + load + interpret; returns (result, interpreter)."""
    from ..lang import compile_source

    assembly = compile_source(source, entry_class=entry_class)
    loaded = LoadedAssembly(assembly)
    interp = Interpreter(loaded)
    result = interp.run()
    return result, interp
