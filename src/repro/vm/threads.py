"""Guest threads and activation frames for the measured (MIR) engine.

Threading is cooperative and deterministic: the scheduler runs one guest
thread for a fixed cycle quantum, then rotates.  Determinism is a design
requirement (DESIGN.md section 6) — every run of a multithreaded benchmark
interleaves identically, so results are reproducible and assertable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

# thread states
NEW = "new"
RUNNABLE = "runnable"
BLOCKED = "blocked"
FINISHED = "finished"


class Frame:
    """One activation of a JIT-compiled function."""

    __slots__ = ("fn", "R", "pc", "finally_stack", "exc", "ret_dst")

    def __init__(self, fn, args: List, ret_dst: int = -1) -> None:
        self.fn = fn
        R = [None] * fn.n_vregs
        R[: len(args)] = args
        self.R = R
        self.pc = 0
        #: continuations for leave/exception unwinding through finallies:
        #: tuples ('leave', queue, target) | ('throw', queue, action, exc)
        self.finally_stack: List[Tuple] = []
        #: exception being handled (for rethrow)
        self.exc = None
        #: caller vreg receiving the return value
        self.ret_dst = ret_dst


class GuestThread:
    """A managed thread."""

    __slots__ = (
        "tid",
        "name",
        "frames",
        "state",
        "entry_obj",
        "waiting_on",
        "join_waiters",
        "saved_monitor_count",
        "result",
        "cycles",
        "quanta",
        "switches",
        "unhandled",
    )

    def __init__(self, tid: int, name: str = "") -> None:
        self.tid = tid
        self.name = name or f"thread-{tid}"
        self.frames: List[Frame] = []
        self.state = NEW
        #: the Runnable-style object whose virtual Run() is the entry
        self.entry_obj = None
        #: what the thread is blocked on (for diagnostics/deadlock reports)
        self.waiting_on: Optional[Tuple[str, object]] = None
        #: threads blocked in Join on this thread
        self.join_waiters: List["GuestThread"] = []
        #: monitor recursion count saved across Monitor.Wait
        self.saved_monitor_count = 0
        self.result = None
        #: cycles attributed to this thread
        self.cycles = 0
        #: scheduler quanta this thread was stepped for (maintained by the
        #: scheduler on every run, observed or not — the metrics layer and
        #: deadlock diagnostics read it; it never feeds back into cycles)
        self.quanta = 0
        #: context switches charged after this thread's quanta
        self.switches = 0
        #: managed exception object that escaped the thread, if any
        self.unhandled = None

    @property
    def alive(self) -> bool:
        return self.state in (RUNNABLE, BLOCKED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GuestThread {self.name} {self.state}>"
