"""Managed heap object representations.

Python-level encodings of the CTS value kinds:

* ``int``/``float``/``None``/``str`` — primitives, null, strings.
* :class:`ObjectInstance` — class instances (fields in a slot list).
* :class:`StructValue` — value types; copied explicitly via ``struct.copy``.
* :class:`BoxedValue` — a boxed value type on the heap.
* :class:`SZArray` — single-dimensional zero-based arrays (and jagged arrays
  as SZ arrays of SZ arrays).
* :class:`MDArray` — true multidimensional arrays (row-major flat storage),
  the Graph 12 subject.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..cil import cts
from ..cil.cts import CType


def zero_value(t: CType):
    """The CLI zero-init value for a storage type."""
    if t.is_reference or t is cts.NULL:
        return None
    if t.is_float:
        return 0.0
    if isinstance(t, cts.NamedType):
        return None  # struct slots are filled by the allocator
    return 0


class ObjectInstance:
    """An instance of a reference class; ``fields`` indexed by loader slots."""

    __slots__ = ("rtclass", "fields", "monitor", "gc_epoch")

    def __init__(self, rtclass, fields: List) -> None:
        self.rtclass = rtclass
        self.fields = fields
        self.monitor = None  # lazily created by Monitor.Enter
        self.gc_epoch = 0

    @property
    def class_name(self) -> str:
        return self.rtclass.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.rtclass.name} object>"


class StructValue:
    """A value-type instance; assignment copies (``struct.copy`` opcode)."""

    __slots__ = ("rtclass", "fields", "gc_epoch")

    def __init__(self, rtclass, fields: List) -> None:
        self.rtclass = rtclass
        self.fields = fields
        self.gc_epoch = 0

    def copy(self) -> "StructValue":
        return StructValue(self.rtclass, list(self.fields))

    @property
    def class_name(self) -> str:
        return self.rtclass.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.rtclass.name} struct>"


class BoxedValue:
    """A value type boxed into an ``object`` reference."""

    __slots__ = ("type_name", "value", "monitor", "gc_epoch")

    def __init__(self, type_name: str, value) -> None:
        self.type_name = type_name
        self.value = value
        self.monitor = None
        self.gc_epoch = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<boxed {self.type_name}: {self.value!r}>"


class SZArray:
    """A rank-1 zero-based array."""

    __slots__ = ("elem", "data", "monitor", "gc_epoch")

    def __init__(self, elem: CType, length: int) -> None:
        self.elem = elem
        if isinstance(elem, cts.NamedType) and elem.is_value_type:
            # struct arrays are filled by the allocator (needs rtclass)
            self.data: List = [None] * length
        else:
            self.data = [zero_value(elem)] * length
        self.monitor = None
        self.gc_epoch = 0

    @property
    def length(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.elem.name}[{len(self.data)}]>"


class MDArray:
    """A true multidimensional array: flat row-major storage plus dims."""

    __slots__ = ("elem", "dims", "data", "strides", "monitor", "gc_epoch")

    def __init__(self, elem: CType, dims: Sequence[int]) -> None:
        self.elem = elem
        self.dims = tuple(dims)
        total = 1
        for d in self.dims:
            total *= d
        self.data = [zero_value(elem)] * total
        # row-major strides
        strides = []
        acc = 1
        for d in reversed(self.dims):
            strides.append(acc)
            acc *= d
        self.strides = tuple(reversed(strides))
        self.monitor = None
        self.gc_epoch = 0

    @property
    def length(self) -> int:
        return len(self.data)

    def flat_index(self, indices: Sequence[int]) -> int:
        """Row-major flattening with per-dimension bounds checks; returns -1
        when any index is out of range."""
        flat = 0
        for i, d, s in zip(indices, self.dims, self.strides):
            if i < 0 or i >= d:
                return -1
            flat += i * s
        return flat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        commas = "x".join(str(d) for d in self.dims)
        return f"<{self.elem.name}[{commas}]>"


#: byte size of an element for allocation accounting
def element_size(t: CType) -> int:
    if isinstance(t, cts.PrimitiveType):
        return max(t.size, 1)
    return 8  # references / structs-by-ref accounting


class Monitor:
    """Per-object lock state (created lazily on first Enter)."""

    __slots__ = ("owner", "count", "entry_queue", "wait_queue")

    def __init__(self) -> None:
        self.owner = None  # GuestThread
        self.count = 0
        self.entry_queue: List = []
        self.wait_queue: List = []


def get_monitor(obj) -> Monitor:
    mon = obj.monitor
    if mon is None:
        mon = Monitor()
        obj.monitor = mon
    return mon
