"""Primitive value semantics: two's-complement wrapping and float32 rounding.

CIL int32/int64 arithmetic wraps (no overflow checking with plain ``add``);
Python ints are unbounded, so every integer result is normalized through
:func:`i32`/:func:`i64`.  float32 results round through an actual 4-byte
representation so single-precision kernels lose precision exactly where a
real VES would.
"""

from __future__ import annotations

import struct

_I32_MASK = 0xFFFFFFFF
_I64_MASK = 0xFFFFFFFFFFFFFFFF

_pack_f = struct.pack
_unpack_f = struct.unpack


def i32(value: int) -> int:
    """Wrap to signed 32-bit."""
    value &= _I32_MASK
    return value - 0x100000000 if value >= 0x80000000 else value


def i64(value: int) -> int:
    """Wrap to signed 64-bit."""
    value &= _I64_MASK
    return value - 0x10000000000000000 if value >= 0x8000000000000000 else value


def u32(value: int) -> int:
    return value & _I32_MASK


def u64(value: int) -> int:
    return value & _I64_MASK


def i8(value: int) -> int:
    value &= 0xFF
    return value - 0x100 if value >= 0x80 else value


def u8(value: int) -> int:
    return value & 0xFF


def i16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value >= 0x8000 else value


def u16(value: int) -> int:
    return value & 0xFFFF


def r4(value: float) -> float:
    """Round a float through IEEE-754 single precision."""
    try:
        return _unpack_f("f", _pack_f("f", value))[0]
    except OverflowError:
        return float("inf") if value > 0 else float("-inf")


def float_to_i32(value: float) -> int:
    """CIL conv.i4 from a float: truncate toward zero; NaN/overflow give the
    x86 sentinel 0x80000000 like period runtimes did."""
    if value != value or value >= 2147483648.0 or value < -2147483648.0:
        return -0x80000000
    return int(value)


def float_to_i64(value: float) -> int:
    if value != value or value >= 9223372036854775808.0 or value < -9223372036854775808.0:
        return -0x8000000000000000
    return int(value)
