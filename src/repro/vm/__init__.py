"""``repro.vm`` — the Virtual Execution System.

Two engines share the loader/object model:

* :class:`~repro.vm.interpreter.Interpreter` — direct CIL walker, the
  semantic reference (single-threaded, no cost model).
* :class:`~repro.vm.machine.Machine` — the measured engine: per-profile
  JIT (MIR) + cycle accounting + cooperative threads.

Attributes are resolved lazily so that leaf modules (``values``,
``objects``, ``intrinsics``) can be imported by :mod:`repro.jit` without
creating a package-level import cycle (the machine imports the JIT).
"""

from typing import TYPE_CHECKING

__all__ = ["Interpreter", "LoadedAssembly", "Machine", "run_source", "run_source_on"]

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .interpreter import Interpreter, run_source
    from .loader import LoadedAssembly
    from .machine import Machine, run_source_on

_LAZY = {
    "Interpreter": ("repro.vm.interpreter", "Interpreter"),
    "run_source": ("repro.vm.interpreter", "run_source"),
    "LoadedAssembly": ("repro.vm.loader", "LoadedAssembly"),
    "Machine": ("repro.vm.machine", "Machine"),
    "run_source_on": ("repro.vm.machine", "run_source_on"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
