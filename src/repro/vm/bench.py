"""Guest-visible benchmark instrumentation (the JGF instrumentor analogue).

Benchmarks call ``Bench.Start/Stop/Ops/Flops/Result`` from managed code; the
recorder keys everything by section name and reads time from the machine's
*simulated cycle counter*, so results are deterministic and wall-clock-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import BenchmarkError


@dataclass
class Section:
    name: str
    total_cycles: int = 0
    started_at: Optional[int] = None
    ops: int = 0
    flops: int = 0
    #: named validation values recorded by the benchmark
    results: List[float] = field(default_factory=list)

    def ops_per_sec(self, clock_hz: float) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.ops / (self.total_cycles / clock_hz)

    def mflops(self, clock_hz: float) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.flops / (self.total_cycles / clock_hz) / 1e6

    def seconds(self, clock_hz: float) -> float:
        """Wall seconds this section would take at a nominal clock."""
        return self.total_cycles / clock_hz


class BenchRecorder:
    """Collects named sections; one per benchmark kernel/variant."""

    def __init__(self, now: Callable[[], int]) -> None:
        self._now = now
        self.sections: Dict[str, Section] = {}
        self.failures: List[str] = []

    def section(self, name: str) -> Section:
        s = self.sections.get(name)
        if s is None:
            s = Section(name)
            self.sections[name] = s
        return s

    def start(self, name: str) -> None:
        s = self.section(name)
        if s.started_at is not None:
            raise BenchmarkError(f"section {name!r} started twice")
        s.started_at = self._now()

    def stop(self, name: str) -> None:
        s = self.section(name)
        if s.started_at is None:
            raise BenchmarkError(f"section {name!r} stopped while not running")
        s.total_cycles += self._now() - s.started_at
        s.started_at = None

    def add_ops(self, name: str, n: int) -> None:
        self.section(name).ops += n

    def add_flops(self, name: str, n: int) -> None:
        self.section(name).flops += n

    def add_result(self, name: str, value: float) -> None:
        self.section(name).results.append(value)

    def fail(self, message: str) -> None:
        self.failures.append(message)

    def require_valid(self) -> None:
        if self.failures:
            raise BenchmarkError("; ".join(self.failures))
        for s in self.sections.values():
            if s.started_at is not None:
                raise BenchmarkError(f"section {s.name!r} never stopped")
