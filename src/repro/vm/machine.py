"""The measured execution engine: MIR executor + runtime profile.

A :class:`Machine` binds a loaded assembly to one runtime profile, JIT-
compiles methods on demand through that profile's pass pipeline, and
executes the resulting MIR while accumulating *simulated cycles* — the only
clock in the system.  Host wall time never enters any result.

Cost accounting:

* every MIR instruction adds its statically stamped ``cost``;
* calls add the profile's call/virtual/intrinsic overhead at dispatch;
* allocation adds ``alloc_base + alloc_per_word*words`` plus an amortized
  GC share (``gc_per_kbyte``);
* array reads/writes on arrays beyond the cache-resident threshold add the
  profile's ``large_array_extra`` (the paper's "large memory model" axis);
* exception dispatch adds ``exception_throw + exception_frame``/frame;
* monitors, thread starts and context switches add their table costs.

Scheduling is cooperative round-robin with a fixed cycle quantum, so
multithreaded benchmarks are deterministic.
"""

from __future__ import annotations

import math
from types import MethodType
from typing import Dict, List, Optional

from ..cil import cts
from ..cil.instructions import MethodRef
from ..cil.metadata import MethodDef
from ..errors import CellTimeout, JitError, ManagedException, VMError
from ..faults.plan import FaultInjector
from ..jit import mir
from ..jit.pipeline import JitCompiler
from ..observe.recorder import (
    CAT_ALLOC,
    CAT_DISPATCH,
    CAT_EXCEPTION,
    CAT_EXECUTE,
    CAT_MEMTAX,
    CAT_MONITOR,
    CAT_RUNTIME,
)
from .bench import BenchRecorder
from .dispatch import resolve_dispatch, step_thread
from .exceptions import GuestException, make_exception, matches
from .intrinsics import INTRINSICS, JavaRandom, Serializer, THREADING_CLASSES
from .loader import LoadedAssembly, RuntimeClass
from .objects import (
    BoxedValue,
    MDArray,
    ObjectInstance,
    SZArray,
    StructValue,
    get_monitor,
)
from .threads import BLOCKED, FINISHED, NEW, RUNNABLE, Frame, GuestThread
from .values import (
    float_to_i32,
    float_to_i64,
    i8 as wrap_i8,
    i16 as wrap_i16,
    i32,
    i64,
    r4,
    u8 as wrap_u8,
    u16 as wrap_u16,
)

#: once a machine's total allocation exceeds this, array accesses pay the
#: profile's large_array_extra ("large memory model": the working set has
#: left the cache).  48 KiB matches the scaled-down problem sizes the same
#: way the paper's large sizes exceeded 2003 L2 caches (DESIGN.md sec. 2).
LARGE_WS_BYTES = 49152

_CONV_FNS = {
    "i1": lambda v: wrap_i8(float_to_i32(v) if isinstance(v, float) else v),
    "u1": lambda v: wrap_u8(float_to_i32(v) if isinstance(v, float) else v),
    "i2": lambda v: wrap_i16(float_to_i32(v) if isinstance(v, float) else v),
    "u2": lambda v: wrap_u16(float_to_i32(v) if isinstance(v, float) else v),
    "i4": lambda v: float_to_i32(v) if isinstance(v, float) else i32(v),
    "i8": lambda v: float_to_i64(v) if isinstance(v, float) else i64(v),
    "r4": lambda v: r4(float(v)),
    "r8": float,
}


def _int_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


class Machine:
    """One virtual machine instance (assembly x profile)."""

    def __init__(
        self,
        loaded: LoadedAssembly,
        profile,
        quantum: int = 50_000,
        max_cycles: int = 200_000_000_000,
        disabled_passes=(),
        observer=None,
        faults=None,
        dispatch=None,
    ) -> None:
        self.loaded = loaded
        self.profile = profile
        self.costs = profile.costs
        #: optional repro.observe.Observer; all hooks are read-only with
        #: respect to machine state, so observation never changes cycles,
        #: instructions, or results (the zero-perturbation invariant)
        self.observer = observer
        #: optional repro.faults.MachineFaults spec, wrapped in a runtime
        #: injector; every hook below is a single is-None test when off, so
        #: an unfaulted machine is cycle-identical to one without the layer
        self.faults = None if faults is None else FaultInjector(faults)
        self.jit = JitCompiler(
            loaded,
            profile,
            disabled_passes=disabled_passes,
            trace=None if observer is None else observer.jit,
        )
        self.quantum = quantum
        self.max_cycles = max_cycles
        #: effective cycle watchdog: the hard ceiling, tightened by an
        #: injected per-cell cycle_limit when a fault plan arms one
        self._cycle_limit = max_cycles
        if self.faults is not None and 0 <= self.faults.cycle_limit < max_cycles:
            self._cycle_limit = self.faults.cycle_limit

        self.cycles = 0
        self.instructions = 0
        self.stdout: List[str] = []
        self.rng = JavaRandom()
        self.serializer = Serializer()
        self.bench = BenchRecorder(self.now)
        self.allocated_bytes = 0
        self.gc_collections = 0
        self.gc_live_objects = 0
        #: set once the working set exceeds LARGE_WS_BYTES
        self.large_working_set = False

        self.threads: List[GuestThread] = []
        self._next_tid = 1
        self.current: Optional[GuestThread] = None
        self._linked: set = set()
        #: dispatch engine: "classic" (interpreted elif chain, the default),
        #: "threaded" (pre-bound closures + superinstructions), or
        #: "threaded-nofuse" (closures without pair fusion).  The threaded
        #: engines shadow the _step_thread method with the closure driver;
        #: both are bit-identical to classic in every simulated observable
        #: (see tests/test_dispatch_equivalence.py).
        self.dispatch = resolve_dispatch(dispatch)
        if self.dispatch != "classic":
            #: per-function closure arrays, keyed by id(fn)
            self._threaded_code: Dict[int, list] = {}
            self._step_thread = MethodType(step_thread, self)
        if observer is not None:
            observer.attach(self)

    # ----------------------------------------------------------- host hooks

    def now(self) -> int:
        return self.cycles

    def _obs_dyn(self, category: str, cycles) -> None:
        """Report a dynamic charge to the observer, attributed to the
        method executing on the current thread (never mutates state)."""
        t = self.current
        fn = t.frames[-1].fn if (t is not None and t.frames) else None
        self.observer.dyn(fn, category, cycles)

    def charge(self, n: int) -> None:
        self.cycles += n
        if self.observer is not None:
            self._obs_dyn(CAT_RUNTIME, n)

    def charge_units(self, kind: str, n: int) -> None:
        if kind == "serialize_byte":
            amount = self.costs.serialize_byte * n
        elif kind == "string_char":
            amount = self.costs.string_char * n
        else:
            amount = n
        self.cycles += amount
        if self.observer is not None:
            self._obs_dyn(CAT_RUNTIME, amount)

    def gc_collect(self) -> None:
        """Explicit collection: a real mark phase over the roots (thread
        frames + statics), costed per object visited.  The steady-state GC
        tax is otherwise amortized into allocation (``gc_per_kbyte``)."""
        self.gc_collections += 1
        started = self.cycles
        live = self._mark_live()
        self.gc_live_objects = live
        self.cycles += 2000 + 12 * live
        if self.observer is not None:
            self._obs_dyn(CAT_ALLOC, self.cycles - started)
            self.observer.gc(started, self.cycles, live)

    def _mark_live(self) -> int:
        """Count heap objects reachable from thread frames and statics."""
        from .objects import BoxedValue, MDArray, ObjectInstance, SZArray, StructValue

        seen = set()
        stack = []

        def push(v):
            if isinstance(v, (ObjectInstance, StructValue, BoxedValue, SZArray, MDArray)):
                if id(v) not in seen:
                    seen.add(id(v))
                    stack.append(v)

        for thread in self.threads:
            for frame in thread.frames:
                for v in frame.R:
                    push(v)
        for rc in self.loaded.classes.values():
            for v in rc.statics:
                push(v)
        while stack:
            obj = stack.pop()
            if isinstance(obj, (ObjectInstance, StructValue)):
                for v in obj.fields:
                    push(v)
            elif isinstance(obj, BoxedValue):
                push(obj.value)
            elif isinstance(obj, (SZArray, MDArray)):
                # primitive arrays hold no references; skip their elements
                if obj.elem.is_reference or not obj.elem.is_primitive:
                    for v in obj.data:
                        push(v)
        return len(seen)

    def total_allocated(self) -> int:
        return self.allocated_bytes

    def thread_count(self) -> int:
        return sum(1 for t in self.threads if t.alive)

    # --------------------------------------------------------------- public

    def run(self, entry: Optional[MethodDef] = None, args: Optional[List] = None):
        """Run static constructors then the entry point on the main thread;
        returns the entry's return value."""
        entry = entry or self.loaded.entry_point
        if entry is None:
            raise VMError("assembly has no entry point")
        main = GuestThread(0, "main")
        self.threads = [main]
        self._next_tid = 1
        observer = self.observer
        for cctor in self.loaded.static_constructors():
            main.frames.append(Frame(self._function(cctor), []))
            if observer is not None:
                observer.enter(main, main.frames[-1].fn, self.cycles)
            main.state = RUNNABLE
            self._scheduler_loop()
            if main.unhandled is not None:
                raise ManagedException(
                    main.unhandled.rtclass.name,
                    self._exc_message(main.unhandled),
                    main.unhandled,
                )
        main.frames.append(Frame(self._function(entry), list(args or [])))
        if observer is not None:
            observer.enter(main, main.frames[-1].fn, self.cycles)
        main.state = RUNNABLE
        self._scheduler_loop()
        if main.unhandled is not None:
            raise ManagedException(
                main.unhandled.rtclass.name,
                self._exc_message(main.unhandled),
                main.unhandled,
            )
        zombies = [t for t in self.threads if t.alive]
        if zombies:
            raise VMError(
                f"main exited with live threads: {[t.name for t in zombies]}"
            )
        return main.result

    def run_named(self, class_name: str, method_name: str, args: Optional[List] = None):
        m = self.loaded.assembly.find_method(class_name, method_name)
        return self.run(entry=m, args=args)

    # ------------------------------------------------------------ jit/link

    def _function(self, method: MethodDef):
        faults = self.faults
        if (
            faults is not None
            and faults.compile_fail_at > 0
            and not self.jit.is_compiled(method)
        ):
            faults.compiles += 1
            if faults.compiles == faults.compile_fail_at:
                faults.record("compile_fail")
                raise JitError(
                    f"injected compile failure at method "
                    f"#{faults.compiles}: {method.full_name}"
                )
        fn = self.jit.compile(method)
        if id(fn) not in self._linked:
            self._link(fn)
            self._linked.add(id(fn))
        return fn

    def _link(self, fn) -> None:
        """Resolve symbolic refs to runtime structures in place."""
        loaded = self.loaded
        for ins in fn.code:
            o = ins.op
            if o in (mir.LDFLD, mir.STFLD):
                if not isinstance(ins.b, int) or ins.b is None or ins.b < 0:
                    _rc, slot = loaded.resolve_field(ins.extra)
                    ins.b = slot
            elif o in (mir.LDSFLD, mir.STSFLD):
                if not isinstance(ins.extra, tuple):
                    rc, slot = loaded.resolve_field(ins.extra)
                    ins.extra = (rc, slot)
            elif o == mir.CALL:
                if isinstance(ins.extra, tuple) and len(ins.extra) == 2 and isinstance(ins.extra[0], MethodRef):
                    ref, is_virtual = ins.extra
                    ins.extra = self._resolve_call(ref, is_virtual)
            elif o == mir.NEWOBJ:
                if isinstance(ins.extra, MethodRef):
                    ref = ins.extra
                    rc = loaded.get_class(ref.class_name)
                    ctor = rc.find_method(".ctor", ref.param_types)
                    if ctor is None and ref.param_types:
                        raise VMError(f"no constructor {ref.signature()}")
                    ins.extra = (rc, ctor)
            elif o in (mir.CASTCLASS, mir.ISINST, mir.UNBOX):
                if not isinstance(ins.extra, tuple):
                    t = ins.extra
                    rc = None
                    if isinstance(t, cts.NamedType):
                        rc = loaded.classes.get(t.name)
                    ins.extra = (t, rc)

    def _resolve_call(self, ref: MethodRef, is_virtual: bool):
        """Pre-resolve a call site into a dispatch record."""
        if ref.class_name in THREADING_CLASSES:
            return ("thread", ref.name, ref.class_name.endswith("Monitor"))
        key = (ref.class_name, ref.name, len(ref.param_types))
        intrinsic = INTRINSICS.get(key)
        if intrinsic is not None:
            cost = self.costs.intrinsic_call
            if ref.class_name == "System.Math":
                cost = self.profile.math_cost(ref.name)
            return ("intrinsic", intrinsic, cost, ref)
        method = self.loaded.resolve_method(ref)
        if is_virtual and (method.is_virtual or method.is_override):
            return ("virtual", ref)
        return ("static", method)

    # -------------------------------------------------------------- threads

    def _spawn_thread(self, runnable_obj) -> int:
        if runnable_obj is None:
            raise make_exception(self.loaded, "NullReferenceException")
        if not isinstance(runnable_obj, ObjectInstance):
            raise make_exception(self.loaded, "ArgumentException", "not runnable")
        run_m = runnable_obj.rtclass.find_method("Run", ())
        if run_m is None:
            raise make_exception(
                self.loaded, "ArgumentException", "object has no Run() method"
            )
        t = GuestThread(self._next_tid)
        self._next_tid += 1
        t.entry_obj = runnable_obj
        self.threads.append(t)
        return t.tid

    def _thread_by_id(self, tid: int) -> GuestThread:
        for t in self.threads:
            if t.tid == tid:
                return t
        raise make_exception(self.loaded, "ArgumentException", f"no thread {tid}")

    def _start_thread(self, tid: int) -> None:
        t = self._thread_by_id(tid)
        if t.state is not NEW:
            raise make_exception(self.loaded, "ArgumentException", "thread already started")
        obj = t.entry_obj
        run_m = obj.rtclass.resolve_virtual("Run", ())
        t.frames.append(Frame(self._function(run_m), [obj]))
        t.state = RUNNABLE
        self.cycles += self.costs.thread_start
        if self.observer is not None:
            self._obs_dyn(CAT_MONITOR, self.costs.thread_start)
            self.observer.thread_started(t, self.cycles)
            self.observer.enter(t, t.frames[-1].fn, self.cycles)

    def _finish_thread(self, t: GuestThread, result) -> None:
        t.state = FINISHED
        t.result = result
        for waiter in t.join_waiters:
            waiter.state = RUNNABLE
            waiter.waiting_on = None
        t.join_waiters.clear()

    # ------------------------------------------------------------ scheduler

    def _scheduler_loop(self) -> None:
        threads = self.threads
        switch_cost = self.costs.thread_switch
        observer = self.observer
        while True:
            ran = False
            blocked = 0
            for t in list(threads):
                if t.state is RUNNABLE:
                    self.current = t
                    before = self.cycles
                    self._step_thread(t, self.quantum)
                    t.cycles += self.cycles - before
                    t.quanta += 1
                    ran = True
                    if observer is not None and self.cycles > before:
                        observer.quantum(t, before, self.cycles)
                    if sum(1 for x in threads if x.alive) > 1:
                        self.cycles += switch_cost
                        t.switches += 1
                        if observer is not None:
                            self._obs_dyn(CAT_MONITOR, switch_cost)
                            observer.switch(t, switch_cost, self.cycles)
                elif t.state is BLOCKED:
                    blocked += 1
            if self.cycles > self._cycle_limit:
                faults = self.faults
                if faults is not None and faults.cycle_limit == self._cycle_limit:
                    faults.record("cycle_limit")
                raise CellTimeout(self.cycles, self._cycle_limit)
            if not ran:
                if blocked:
                    names = [
                        f"{t.name} on {t.waiting_on}" for t in threads if t.state is BLOCKED
                    ]
                    raise VMError(f"deadlock: all threads blocked: {names}")
                return

    # ----------------------------------------------------------- exceptions

    def _exc_message(self, obj: ObjectInstance) -> str:
        slot = obj.rtclass.field_slots.get("Message")
        v = obj.fields[slot] if slot is not None else ""
        return v if isinstance(v, str) else ""

    def _throw(self, thread: GuestThread, exc_obj: ObjectInstance) -> None:
        """Begin dispatch of a managed exception on ``thread``.

        Sets up finally continuations / catch entry; when nothing handles
        it, the thread dies with ``unhandled`` set.
        """
        observer = self.observer
        self.cycles += self.costs.exception_throw
        if observer is not None:
            self._obs_dyn(CAT_EXCEPTION, self.costs.exception_throw)
        frames = thread.frames
        while frames:
            frame = frames[-1]
            self.cycles += self.costs.exception_frame
            if observer is not None:
                self._obs_dyn(CAT_EXCEPTION, self.costs.exception_frame)
            fn = frame.fn
            pc = frame.pc
            candidates = [reg for reg in fn.regions if reg.covers(pc)]
            candidates.sort(key=lambda reg: (reg.try_end - reg.try_start, reg.try_start))
            catch = None
            for reg in candidates:
                if reg.kind == "catch":
                    catch_rc = self.loaded.get_class(reg.catch_type)
                    if matches(exc_obj.rtclass, catch_rc):
                        catch = reg
                        break
            if catch is not None:
                finallies = [
                    reg for reg in candidates
                    if reg.kind == "finally"
                    and (reg.try_end - reg.try_start) < (catch.try_end - catch.try_start)
                ]
                action = ("catch", catch)
            else:
                finallies = [reg for reg in candidates if reg.kind == "finally"]
                action = ("unwind",)
            if finallies:
                frame.finally_stack.append(("throw", finallies[1:], action, exc_obj))
                frame.pc = finallies[0].handler_start
                faults = self.faults
                if faults is not None and faults.throw_during_unwind > 0:
                    faults.enter_unwind_finally(thread)
                return
            if catch is not None:
                self._enter_catch(frame, catch, exc_obj)
                return
            frames.pop()
            if observer is not None:
                observer.exit(thread, self.cycles)
                observer.unwound(thread, self.cycles)
        # escaped the thread
        self._finish_thread(thread, None)
        thread.unhandled = exc_obj

    def _enter_catch(self, frame: Frame, region, exc_obj) -> None:
        if region.exc_vreg >= 0:
            frame.R[region.exc_vreg] = exc_obj
        frame.exc = exc_obj
        frame.pc = region.handler_start

    def _end_finally(self, thread: GuestThread, frame: Frame) -> None:
        if not frame.finally_stack:
            raise VMError(f"endfinally with no continuation in {frame.fn.full_name}")
        entry = frame.finally_stack.pop()
        if entry[0] == "leave":
            _kind, queue, target = entry
            if queue:
                frame.finally_stack.append(("leave", queue[1:], target))
                frame.pc = queue[0].handler_start
            else:
                frame.pc = target
            return
        _kind, queue, action, exc_obj = entry
        if queue:
            frame.finally_stack.append(("throw", queue[1:], action, exc_obj))
            frame.pc = queue[0].handler_start
            faults = self.faults
            if faults is not None and faults.throw_during_unwind > 0:
                faults.enter_unwind_finally(thread)
            return
        if action[0] == "catch":
            self._enter_catch(frame, action[1], exc_obj)
            return
        # unwind: pop this frame, continue dispatch in the caller
        thread.frames.pop()
        if self.observer is not None:
            self.observer.exit(thread, self.cycles)
            self.observer.unwound(thread, self.cycles)
        if thread.frames:
            self._throw_continue(thread, exc_obj)
        else:
            self._finish_thread(thread, None)
            thread.unhandled = exc_obj

    def _throw_continue(self, thread: GuestThread, exc_obj) -> None:
        """Continue exception dispatch after unwinding one frame (no fresh
        throw cost; per-frame cost applied inside _throw)."""
        saved = self.costs.exception_throw
        # _throw charges the throw cost; compensate so unwinding only pays
        # the per-frame share
        self.cycles -= saved
        if self.observer is not None:
            self._obs_dyn(CAT_EXCEPTION, -saved)
        self._throw(thread, exc_obj)

    def _leave(self, thread: GuestThread, frame: Frame, target: int) -> None:
        pc = frame.pc
        pending = [
            reg
            for reg in frame.fn.regions
            if reg.kind == "finally" and reg.covers(pc) and not reg.covers(target)
        ]
        pending.sort(key=lambda reg: reg.try_start, reverse=True)
        if pending:
            frame.finally_stack.append(("leave", pending[1:], target))
            frame.pc = pending[0].handler_start
        else:
            frame.pc = target

    # ------------------------------------------------------------ allocation

    def _alloc_charge(self, byte_size: int) -> None:
        self.allocated_bytes += byte_size
        if self.allocated_bytes > LARGE_WS_BYTES:
            self.large_working_set = True
        t = self.costs
        amount = (
            t.alloc_base
            + t.alloc_per_word * (byte_size // 8)
            + (t.gc_per_kbyte * byte_size) // 1024  # amortized GC share
        )
        self.cycles += amount
        if self.observer is not None:
            self._obs_dyn(CAT_ALLOC, amount)
            self.observer.alloc(byte_size, amount)
        faults = self.faults
        if faults is not None:
            faults.allocs += 1
            if faults.allocs == faults.oom_at_alloc:
                faults.record("alloc_oom")
                raise make_exception(
                    self.loaded,
                    "OutOfMemoryException",
                    f"injected allocation failure at allocation #{faults.allocs}",
                )
            if 0 <= faults.heap_limit < self.allocated_bytes:
                faults.record("heap_limit")
                raise make_exception(
                    self.loaded,
                    "OutOfMemoryException",
                    f"heap limit exceeded: {self.allocated_bytes} bytes "
                    f"> {faults.heap_limit}",
                )

    def _new_szarray(self, elem, length: int) -> SZArray:
        if length < 0:
            raise make_exception(self.loaded, "ArgumentException", "negative length")
        arr = SZArray(elem, length)
        if isinstance(elem, cts.NamedType) and elem.is_value_type:
            rc = self.loaded.get_class(elem.name)
            arr.data = [self.loaded.new_instance(rc) for _ in range(length)]
            self._alloc_charge(16 + (8 * len(rc.field_types) + 8) * length)
        else:
            self._alloc_charge(16 + 8 * length)
        return arr

    # ----------------------------------------------------------- monitors

    def _monitor_op(self, thread: GuestThread, name: str, args: List) -> None:
        if not args or args[0] is None:
            raise make_exception(self.loaded, "NullReferenceException")
        obj = args[0]
        mon = get_monitor(obj)
        t = self.costs
        observer = self.observer

        def charge(n):
            self.cycles += n
            if observer is not None:
                self._obs_dyn(CAT_MONITOR, n)

        if name == "Enter":
            faults = self.faults
            if faults is not None and faults.monitor_fail_at > 0:
                faults.monitor_enters += 1
                if faults.monitor_enters == faults.monitor_fail_at:
                    faults.record("monitor_fail")
                    raise make_exception(
                        self.loaded,
                        "SynchronizationException",
                        f"injected monitor acquire failure at enter "
                        f"#{faults.monitor_enters}",
                    )
            if mon.owner is None or mon.owner is thread:
                mon.owner = thread
                mon.count += 1
                charge(t.monitor_enter)
            else:
                charge(t.monitor_contended)
                mon.entry_queue.append(thread)
                thread.state = BLOCKED
                thread.waiting_on = ("monitor", id(obj))
                if observer is not None:
                    observer.contention(thread, self.cycles)
            return
        if name == "Exit":
            if mon.owner is not thread:
                raise make_exception(
                    self.loaded, "SynchronizationException", "Exit by non-owner"
                )
            charge(t.monitor_exit)
            mon.count -= 1
            if mon.count == 0:
                self._release_monitor(mon)
            return
        if name == "Wait":
            if mon.owner is not thread:
                raise make_exception(
                    self.loaded, "SynchronizationException", "Wait by non-owner"
                )
            thread.saved_monitor_count = mon.count
            mon.count = 0
            self._release_monitor(mon)
            mon.wait_queue.append(thread)
            thread.state = BLOCKED
            thread.waiting_on = ("wait", id(obj))
            charge(t.monitor_enter)
            return
        if name in ("Pulse", "PulseAll"):
            if mon.owner is not thread:
                raise make_exception(
                    self.loaded, "SynchronizationException", "Pulse by non-owner"
                )
            charge(t.monitor_exit)
            movers = mon.wait_queue[: (1 if name == "Pulse" else len(mon.wait_queue))]
            del mon.wait_queue[: len(movers)]
            mon.entry_queue.extend(movers)
            return
        raise VMError(f"unknown monitor op {name}")

    def _release_monitor(self, mon) -> None:
        mon.owner = None
        if mon.entry_queue:
            t = mon.entry_queue.pop(0)
            mon.owner = t
            mon.count = t.saved_monitor_count or 1
            t.saved_monitor_count = 0
            t.state = RUNNABLE
            t.waiting_on = None

    def _thread_op(self, thread: GuestThread, name: str, args: List):
        if name == "Create":
            return self._spawn_thread(args[0])
        if name == "Start":
            self._start_thread(args[0])
            return None
        if name == "Join":
            target = self._thread_by_id(args[0])
            if target.alive:
                target.join_waiters.append(thread)
                thread.state = BLOCKED
                thread.waiting_on = ("join", target.tid)
            return None
        if name == "Yield":
            thread.state = RUNNABLE  # quantum ends via executor break
            return "yield"
        if name == "CurrentId":
            return thread.tid
        raise VMError(f"unknown thread op {name}")

    # ------------------------------------------------------------- executor

    def _step_thread(self, thread: GuestThread, budget: int) -> None:
        """Run ``thread`` for up to ``budget`` cycles (approximately)."""
        loaded = self.loaded
        costs = self.costs
        observer = self.observer
        # hot-loop locals; None when observation is off so the only cost of
        # the instrumentation is one is-None test per instruction
        obs_instr = None if observer is None else observer.instr
        obs_dyn = None if observer is None else observer.dyn
        # fault-injection locals: -1 means disarmed, so the per-call checks
        # below stay single int compares and cost zero simulated cycles
        faults = self.faults
        stack_limit = -1 if faults is None else faults.stack_limit
        spent = 0
        total_spent = 0
        # instruction burst bound: coarse for big quanta (cheap), fine for
        # small quanta (lets tests schedule at fine grain)
        burst = budget >> 1
        if burst > 4096:
            burst = 4096
        elif burst < 8:
            burst = 8
        while thread.frames and total_spent < budget and thread.state is RUNNABLE:
            frame = thread.frames[-1]
            fn = frame.fn
            code = fn.code
            R = frame.R
            pc = frame.pc
            icount = 0
            rebind = False
            try:
                if faults is not None and faults.pending is not None:
                    injected = faults.take_pending(thread)
                    if injected is not None:
                        # an exception seeded during unwind fires at the
                        # entry of the finally handler the dispatcher just
                        # targeted, and goes through the same two-pass
                        # machinery as any guest throw
                        raise make_exception(loaded, injected[0], injected[1])
                while True:
                    ins = code[pc]
                    o = ins.op
                    spent += ins.cost
                    icount += 1
                    if obs_instr is not None:
                        obs_instr(fn, o, ins.cost)

                    if o == 0:  # MOV
                        v = R[ins.a]
                        if ins.kind == "r4" and type(v) is float:
                            v = r4(v)
                        R[ins.dst] = v
                        pc += 1
                    elif o == 1:  # LDI
                        R[ins.dst] = ins.a
                        pc += 1
                    elif o == mir.ADD:
                        a = R[ins.a]; b = R[ins.b]
                        k = ins.kind
                        if k == "i4":
                            R[ins.dst] = i32(a + b)
                        elif k == "r8":
                            R[ins.dst] = a + b
                        elif k == "i8":
                            R[ins.dst] = i64(a + b)
                        else:
                            R[ins.dst] = r4(a + b)
                        pc += 1
                    elif o == mir.SUB:
                        a = R[ins.a]; b = R[ins.b]
                        k = ins.kind
                        if k == "i4":
                            R[ins.dst] = i32(a - b)
                        elif k == "r8":
                            R[ins.dst] = a - b
                        elif k == "i8":
                            R[ins.dst] = i64(a - b)
                        else:
                            R[ins.dst] = r4(a - b)
                        pc += 1
                    elif o == mir.MUL:
                        a = R[ins.a]; b = R[ins.b]
                        k = ins.kind
                        if k == "i4":
                            R[ins.dst] = i32(a * b)
                        elif k == "r8":
                            R[ins.dst] = a * b
                        elif k == "i8":
                            R[ins.dst] = i64(a * b)
                        else:
                            R[ins.dst] = r4(a * b)
                        pc += 1
                    elif o == mir.DIV:
                        a = R[ins.a]; b = R[ins.b]
                        k = ins.kind
                        if k in ("i4", "i8"):
                            if b == 0:
                                raise make_exception(loaded, "DivideByZeroException")
                            q = _int_div(a, b)
                            R[ins.dst] = i32(q) if k == "i4" else i64(q)
                        else:
                            if b == 0.0:
                                if a == 0.0 or a != a:
                                    q = float("nan")
                                else:
                                    pos = (a > 0) == (math.copysign(1.0, b) > 0)
                                    q = float("inf") if pos else float("-inf")
                            else:
                                q = a / b
                            R[ins.dst] = r4(q) if k == "r4" else q
                        pc += 1
                    elif o == mir.REM:
                        a = R[ins.a]; b = R[ins.b]
                        k = ins.kind
                        if k in ("i4", "i8"):
                            if b == 0:
                                raise make_exception(loaded, "DivideByZeroException")
                            R[ins.dst] = a - _int_div(a, b) * b
                        else:
                            R[ins.dst] = math.fmod(a, b) if b != 0.0 else float("nan")
                        pc += 1
                    elif o in (mir.AND, mir.OR, mir.XOR):
                        a = R[ins.a]; b = R[ins.b]
                        R[ins.dst] = (a & b) if o == mir.AND else (a | b) if o == mir.OR else (a ^ b)
                        pc += 1
                    elif o == mir.SHL:
                        a = R[ins.a]; b = R[ins.b]
                        if ins.kind == "i4":
                            R[ins.dst] = i32(a << (b & 31))
                        else:
                            R[ins.dst] = i64(a << (b & 63))
                        pc += 1
                    elif o == mir.SHR:
                        a = R[ins.a]; b = R[ins.b]
                        R[ins.dst] = a >> (b & (31 if ins.kind == "i4" else 63))
                        pc += 1
                    elif o == mir.SHRU:
                        a = R[ins.a]; b = R[ins.b]
                        if ins.kind == "i4":
                            R[ins.dst] = i32((a & 0xFFFFFFFF) >> (b & 31))
                        else:
                            R[ins.dst] = i64((a & 0xFFFFFFFFFFFFFFFF) >> (b & 63))
                        pc += 1
                    elif o == mir.NEG:
                        a = R[ins.a]
                        k = ins.kind
                        R[ins.dst] = i32(-a) if k == "i4" else i64(-a) if k == "i8" else -a
                        pc += 1
                    elif o == mir.NOT:
                        a = R[ins.a]
                        R[ins.dst] = i32(~a) if ins.kind == "i4" else i64(~a)
                        pc += 1
                    elif o in (mir.CEQ, mir.CNE, mir.CLT, mir.CLE, mir.CGT, mir.CGE):
                        a = R[ins.a]; b = R[ins.b]
                        nan = (type(a) is float and a != a) or (type(b) is float and b != b)
                        if o == mir.CEQ:
                            res = 0 if nan else (1 if (a is b or a == b) else 0)
                        elif o == mir.CNE:
                            res = 1 if nan else (0 if (a is b or a == b) else 1)
                        elif nan:
                            res = 0
                        elif o == mir.CLT:
                            res = 1 if a < b else 0
                        elif o == mir.CLE:
                            res = 1 if a <= b else 0
                        elif o == mir.CGT:
                            res = 1 if a > b else 0
                        else:
                            res = 1 if a >= b else 0
                        R[ins.dst] = res
                        pc += 1
                    elif o == mir.CONV:
                        R[ins.dst] = _CONV_FNS[ins.extra](R[ins.a])
                        pc += 1
                    elif o == mir.JMP:
                        pc = ins.target
                    elif o == mir.JTRUE:
                        v = R[ins.a]
                        pc = ins.target if (v is not None and v != 0) else pc + 1
                    elif o == mir.JFALSE:
                        v = R[ins.a]
                        pc = ins.target if (v is None or v == 0) else pc + 1
                    elif o in (mir.JEQ, mir.JNE, mir.JLT, mir.JLE, mir.JGT, mir.JGE):
                        a = R[ins.a]; b = R[ins.b]
                        nan = (type(a) is float and a != a) or (type(b) is float and b != b)
                        if o == mir.JEQ:
                            taken = (not nan) and (a is b or a == b)
                        elif o == mir.JNE:
                            taken = nan or not (a is b or a == b)
                        elif nan:
                            taken = False
                        elif o == mir.JLT:
                            taken = a < b
                        elif o == mir.JLE:
                            taken = a <= b
                        elif o == mir.JGT:
                            taken = a > b
                        else:
                            taken = a >= b
                        pc = ins.target if taken else pc + 1
                    elif o == mir.SWITCH:
                        v = R[ins.a]
                        targets = ins.extra
                        pc = targets[v] if 0 <= v < len(targets) else pc + 1
                    elif o == mir.LDELEM:
                        arr = R[ins.a]
                        if arr is None:
                            raise make_exception(loaded, "NullReferenceException")
                        idx = R[ins.b]
                        data = arr.data
                        if idx < 0 or idx >= len(data):
                            raise make_exception(loaded, "IndexOutOfRangeException")
                        if self.large_working_set:
                            spent += costs.large_array_extra
                            if obs_dyn is not None:
                                obs_dyn(fn, CAT_MEMTAX, costs.large_array_extra)
                        R[ins.dst] = data[idx]
                        pc += 1
                    elif o == mir.STELEM:
                        arr = R[ins.a]
                        if arr is None:
                            raise make_exception(loaded, "NullReferenceException")
                        idx = R[ins.b]
                        data = arr.data
                        if idx < 0 or idx >= len(data):
                            raise make_exception(loaded, "IndexOutOfRangeException")
                        if self.large_working_set:
                            spent += costs.large_array_extra
                            if obs_dyn is not None:
                                obs_dyn(fn, CAT_MEMTAX, costs.large_array_extra)
                        v = R[ins.c]
                        if ins.kind == "r4" and type(v) is float:
                            v = r4(v)
                        data[idx] = v
                        pc += 1
                    elif o == mir.LDFLD:
                        obj = R[ins.a]
                        if obj is None:
                            raise make_exception(loaded, "NullReferenceException")
                        R[ins.dst] = obj.fields[ins.b]
                        pc += 1
                    elif o == mir.STFLD:
                        obj = R[ins.a]
                        if obj is None:
                            raise make_exception(loaded, "NullReferenceException")
                        v = R[ins.c]
                        if ins.kind == "r4" and type(v) is float:
                            v = r4(v)
                        obj.fields[ins.b] = v
                        pc += 1
                    elif o == mir.LDSFLD:
                        rc, slot = ins.extra
                        R[ins.dst] = rc.statics[slot]
                        pc += 1
                    elif o == mir.STSFLD:
                        rc, slot = ins.extra
                        v = R[ins.c]
                        if ins.kind == "r4" and type(v) is float:
                            v = r4(v)
                        rc.statics[slot] = v
                        pc += 1
                    elif o == mir.CALL:
                        frame.pc = pc + 1
                        kind = ins.extra[0]
                        if kind == "intrinsic":
                            _k, fn_i, cost_i, ref = ins.extra
                            spent += cost_i
                            if obs_dyn is not None:
                                obs_dyn(fn, CAT_DISPATCH, cost_i)
                            self.cycles += spent
                            total_spent += spent
                            spent = 0
                            argv = [R[v] for v in ins.args] if ins.args else []
                            result = fn_i(self, argv)
                            if ins.dst >= 0:
                                R[ins.dst] = result
                            pc += 1
                        elif kind == "static":
                            method = ins.extra[1]
                            spent += costs.call
                            if not method.is_static and ins.args and R[ins.args[0]] is None:
                                raise make_exception(loaded, "NullReferenceException")
                            if 0 <= stack_limit <= len(thread.frames):
                                faults.record("stack_limit")
                                raise make_exception(
                                    loaded,
                                    "StackOverflowException",
                                    f"call depth {len(thread.frames)} at limit "
                                    f"{stack_limit}",
                                )
                            callee = self._function(method)
                            argv = [R[v] for v in ins.args] if ins.args else []
                            thread.frames.append(Frame(callee, argv, ret_dst=ins.dst))
                            if observer is not None:
                                obs_dyn(fn, CAT_DISPATCH, costs.call)
                                observer.enter(
                                    thread, callee, self.cycles + spent
                                )
                            rebind = True
                            break
                        elif kind == "virtual":
                            ref = ins.extra[1]
                            spent += costs.call + costs.virtual_call_extra
                            receiver = R[ins.args[0]]
                            if receiver is None:
                                raise make_exception(loaded, "NullReferenceException")
                            method = receiver.rtclass.resolve_virtual(
                                ref.name, ref.param_types
                            )
                            if 0 <= stack_limit <= len(thread.frames):
                                faults.record("stack_limit")
                                raise make_exception(
                                    loaded,
                                    "StackOverflowException",
                                    f"call depth {len(thread.frames)} at limit "
                                    f"{stack_limit}",
                                )
                            callee = self._function(method)
                            argv = [R[v] for v in ins.args]
                            thread.frames.append(Frame(callee, argv, ret_dst=ins.dst))
                            if observer is not None:
                                obs_dyn(
                                    fn,
                                    CAT_DISPATCH,
                                    costs.call + costs.virtual_call_extra,
                                )
                                observer.enter(
                                    thread, callee, self.cycles + spent
                                )
                            rebind = True
                            break
                        else:  # thread / monitor ops
                            _k, name, is_monitor = ins.extra
                            self.cycles += spent
                            total_spent += spent
                            spent = 0
                            argv = [R[v] for v in ins.args] if ins.args else []
                            if is_monitor:
                                self._monitor_op(thread, name, argv)
                                pc += 1
                                if thread.state is not RUNNABLE:
                                    frame.pc = pc
                                    return
                            else:
                                result = self._thread_op(thread, name, argv)
                                pc += 1
                                if result == "yield":
                                    frame.pc = pc
                                    return
                                if ins.dst >= 0:
                                    R[ins.dst] = result
                                if thread.state is not RUNNABLE:
                                    frame.pc = pc
                                    return
                    elif o == mir.RET:
                        value = R[ins.a] if isinstance(ins.a, int) and ins.a >= 0 else None
                        thread.frames.pop()
                        if observer is not None:
                            observer.exit(thread, self.cycles + spent)
                        if thread.frames:
                            caller = thread.frames[-1]
                            if frame.ret_dst >= 0:
                                caller.R[frame.ret_dst] = value
                        else:
                            self._finish_thread(thread, value)
                        rebind = True
                        break
                    elif o == mir.NEWOBJ:
                        rc, ctor = ins.extra
                        obj = loaded.new_instance(rc)
                        self.cycles += spent
                        total_spent += spent
                        spent = 0
                        self._alloc_charge(rc.instance_size)
                        R[ins.dst] = obj
                        if ctor is not None:
                            frame.pc = pc + 1
                            spent += costs.call
                            if 0 <= stack_limit <= len(thread.frames):
                                faults.record("stack_limit")
                                raise make_exception(
                                    loaded,
                                    "StackOverflowException",
                                    f"call depth {len(thread.frames)} at limit "
                                    f"{stack_limit}",
                                )
                            callee = self._function(ctor)
                            argv = [obj] + ([R[v] for v in ins.args] if ins.args else [])
                            thread.frames.append(Frame(callee, argv, ret_dst=-1))
                            if observer is not None:
                                obs_dyn(fn, CAT_DISPATCH, costs.call)
                                observer.enter(
                                    thread, callee, self.cycles + spent
                                )
                            rebind = True
                            break
                        pc += 1
                    elif o == mir.NEWARR:
                        length = R[ins.a]
                        self.cycles += spent
                        total_spent += spent
                        spent = 0
                        R[ins.dst] = self._new_szarray(ins.extra, length)
                        pc += 1
                    elif o == mir.NEWARR_MD:
                        dims = [R[v] for v in ins.args]
                        if any(d < 0 for d in dims):
                            raise make_exception(loaded, "ArgumentException", "negative length")
                        arr = MDArray(ins.extra, dims)
                        self.cycles += spent
                        total_spent += spent
                        spent = 0
                        self._alloc_charge(16 + 8 * len(arr.data))
                        R[ins.dst] = arr
                        pc += 1
                    elif o == mir.LDLEN:
                        arr = R[ins.a]
                        if arr is None:
                            raise make_exception(loaded, "NullReferenceException")
                        R[ins.dst] = arr.length
                        pc += 1
                    elif o == mir.LDELEM_MD:
                        arr = R[ins.a]
                        if arr is None:
                            raise make_exception(loaded, "NullReferenceException")
                        flat = arr.flat_index([R[v] for v in ins.args])
                        if flat < 0:
                            raise make_exception(loaded, "IndexOutOfRangeException")
                        if self.large_working_set:
                            spent += costs.large_array_extra
                            if obs_dyn is not None:
                                obs_dyn(fn, CAT_MEMTAX, costs.large_array_extra)
                        R[ins.dst] = arr.data[flat]
                        pc += 1
                    elif o == mir.STELEM_MD:
                        arr = R[ins.a]
                        if arr is None:
                            raise make_exception(loaded, "NullReferenceException")
                        flat = arr.flat_index([R[v] for v in ins.args])
                        if flat < 0:
                            raise make_exception(loaded, "IndexOutOfRangeException")
                        if self.large_working_set:
                            spent += costs.large_array_extra
                            if obs_dyn is not None:
                                obs_dyn(fn, CAT_MEMTAX, costs.large_array_extra)
                        v = R[ins.c]
                        if ins.kind == "r4" and type(v) is float:
                            v = r4(v)
                        arr.data[flat] = v
                        pc += 1
                    elif o == mir.BOX:
                        self._alloc_charge(16)
                        R[ins.dst] = BoxedValue(ins.extra.name, R[ins.a])
                        pc += 1
                    elif o == mir.UNBOX:
                        v = R[ins.a]
                        if v is None:
                            raise make_exception(loaded, "NullReferenceException")
                        if not isinstance(v, BoxedValue):
                            raise make_exception(loaded, "InvalidCastException")
                        t, _rc = ins.extra
                        if isinstance(t, cts.NamedType):
                            if (
                                not isinstance(v.value, StructValue)
                                or v.value.rtclass.name != t.name
                            ):
                                raise make_exception(loaded, "InvalidCastException")
                            R[ins.dst] = v.value.copy()
                        else:
                            if not _box_matches(v.type_name, t.name):
                                raise make_exception(loaded, "InvalidCastException")
                            R[ins.dst] = v.value
                        pc += 1
                    elif o in (mir.CASTCLASS, mir.ISINST):
                        v = R[ins.a]
                        t, rc = ins.extra
                        good = v is not None and self._isinst(v, t, rc)
                        if o == mir.CASTCLASS:
                            if v is not None and not good:
                                raise make_exception(loaded, "InvalidCastException")
                            R[ins.dst] = v
                        else:
                            R[ins.dst] = v if good else None
                        pc += 1
                    elif o == mir.STRUCT_COPY:
                        v = R[ins.a]
                        if isinstance(v, StructValue):
                            spent += costs.struct_copy_per_field * len(v.fields)
                            if obs_dyn is not None:
                                obs_dyn(
                                    fn,
                                    CAT_EXECUTE,
                                    costs.struct_copy_per_field * len(v.fields),
                                )
                            R[ins.dst] = v.copy()
                        else:
                            R[ins.dst] = v
                        pc += 1
                    elif o == mir.THROW:
                        v = R[ins.a]
                        if v is None:
                            raise make_exception(loaded, "NullReferenceException")
                        raise GuestException(v)
                    elif o == mir.RETHROW:
                        if frame.exc is None:
                            raise VMError("rethrow with no active exception")
                        raise GuestException(frame.exc)
                    elif o == mir.LEAVE:
                        frame.pc = pc
                        self._leave(thread, frame, ins.target)
                        pc = frame.pc
                    elif o == mir.ENDFINALLY:
                        frame.pc = pc
                        self.cycles += spent
                        total_spent += spent
                        spent = 0
                        self._end_finally(thread, frame)
                        rebind = True
                        break
                    elif o == mir.NOP:
                        pc += 1
                    else:  # pragma: no cover - defensive
                        raise VMError(f"unhandled MIR op {mir.name(o)}")

                    if total_spent + spent >= budget or icount >= burst:
                        frame.pc = pc
                        rebind = True
                        break
            except GuestException as guest:
                frame.pc = pc
                self.cycles += spent
                total_spent += spent
                spent = 0
                self.instructions += icount
                if observer is not None:
                    observer.throw(self.cycles)
                self._throw(thread, guest.obj)
                continue
            if not rebind:
                frame.pc = pc
            self.cycles += spent
            total_spent += spent
            self.instructions += icount
            spent = 0

    def _isinst(self, v, t, rc: Optional[RuntimeClass]) -> bool:
        if isinstance(t, cts.ObjectType):
            return True
        if isinstance(v, str):
            return isinstance(t, cts.StringType)
        if isinstance(v, (SZArray, MDArray)):
            return t.is_array
        if isinstance(v, BoxedValue):
            return isinstance(t, cts.NamedType) and v.type_name == t.name
        if isinstance(v, ObjectInstance):
            return rc is not None and v.rtclass.is_subclass_of(rc)
        return False


def _box_matches(box_type: str, target_name: str) -> bool:
    if box_type == target_name:
        return True
    group_int = {"int32", "int16", "int8", "uint8", "uint16", "char", "bool"}
    return box_type in group_int and target_name in group_int


def run_source_on(source: str, profile, entry_class: Optional[str] = None,
                  quantum: int = 50_000, dispatch=None):
    """Convenience: compile once, run on one profile; returns (result, machine)."""
    from ..lang import compile_source

    assembly = compile_source(source, entry_class=entry_class)
    loaded = LoadedAssembly(assembly)
    machine = Machine(loaded, profile, quantum=quantum, dispatch=dispatch)
    result = machine.run()
    return result, machine
