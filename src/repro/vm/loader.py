"""Assembly loading and linking.

Turns :class:`~repro.cil.metadata.Assembly` metadata into runtime structures:
field slot layouts (base-class fields first, like the CLR's layout engine),
virtual-method tables, static storage, and resolved method lookup — the
"load types in a way that they can be isolated yet share resources" design
rule from the paper's section 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cil import cts
from ..cil.cts import CType
from ..cil.instructions import FieldRef, MethodRef
from ..cil.metadata import Assembly, ClassDef, FieldDef, MethodDef
from ..errors import LoadError
from .objects import ObjectInstance, StructValue, zero_value

_SigKey = Tuple[str, Tuple[str, ...]]


def _sig_key(name: str, param_types) -> _SigKey:
    return (name, tuple(t.name for t in param_types))


class RuntimeClass:
    """Loaded form of a :class:`~repro.cil.metadata.ClassDef`."""

    def __init__(self, classdef: ClassDef) -> None:
        self.classdef = classdef
        self.name = classdef.name
        self.is_value_type = classdef.is_value_type
        self.base: Optional[RuntimeClass] = None
        #: instance field name -> slot index (includes inherited)
        self.field_slots: Dict[str, int] = {}
        #: slot index -> declared type (for zero-init)
        self.field_types: List[CType] = []
        #: static field name -> index into ``statics``
        self.static_slots: Dict[str, int] = {}
        self.statics: List = []
        self.static_types: List[CType] = []
        #: signature -> resolved MethodDef, following the virtual chain
        self.vtable: Dict[_SigKey, MethodDef] = {}
        #: all methods declared directly on this class
        self.methods: Dict[_SigKey, MethodDef] = {}

    def is_subclass_of(self, other: "RuntimeClass") -> bool:
        cls: Optional[RuntimeClass] = self
        while cls is not None:
            if cls is other:
                return True
            cls = cls.base
        return False

    def resolve_virtual(self, name: str, param_types) -> MethodDef:
        key = _sig_key(name, param_types)
        m = self.vtable.get(key)
        if m is None:
            raise LoadError(f"{self.name} has no virtual method {name}")
        return m

    def find_method(self, name: str, param_types) -> Optional[MethodDef]:
        key = _sig_key(name, param_types)
        cls: Optional[RuntimeClass] = self
        while cls is not None:
            m = cls.methods.get(key)
            if m is not None:
                return m
            cls = cls.base
        return None

    @property
    def instance_size(self) -> int:
        """Approximate object size in bytes for allocation accounting."""
        return 16 + 8 * len(self.field_types)


class LoadedAssembly:
    """A linked assembly ready for execution."""

    def __init__(self, assembly: Assembly) -> None:
        self.assembly = assembly
        self.classes: Dict[str, RuntimeClass] = {}
        self._link()

    # ------------------------------------------------------------------ link

    def _link(self) -> None:
        for name, classdef in self.assembly.classes.items():
            self.classes[name] = RuntimeClass(classdef)
        for rc in self.classes.values():
            base_name = rc.classdef.base_name
            if base_name is not None:
                base = self.classes.get(base_name)
                if base is None:
                    raise LoadError(f"{rc.name}: unknown base class {base_name}")
                rc.base = base
        # layout in base-first order (topological over the hierarchy)
        done: Dict[str, bool] = {}

        def layout(rc: RuntimeClass) -> None:
            if done.get(rc.name):
                return
            if rc.base is not None:
                layout(rc.base)
                rc.field_slots.update(rc.base.field_slots)
                rc.field_types.extend(rc.base.field_types)
                rc.vtable.update(rc.base.vtable)
            for f in rc.classdef.instance_fields():
                if f.name in rc.field_slots:
                    raise LoadError(f"{rc.name}: field {f.name} shadows base field")
                f.slot = len(rc.field_types)
                rc.field_slots[f.name] = f.slot
                rc.field_types.append(f.field_type)
            for f in rc.classdef.static_fields():
                index = len(rc.statics)
                rc.static_slots[f.name] = index
                rc.statics.append(zero_value(f.field_type))
                rc.static_types.append(f.field_type)
            for m in rc.classdef.methods:
                key = _sig_key(m.name, m.param_types)
                rc.methods[key] = m
                if m.is_virtual or m.is_override:
                    if m.is_override and key not in rc.vtable:
                        raise LoadError(f"{m.full_name}: override without base virtual")
                    rc.vtable[key] = m
            done[rc.name] = True

        for rc in self.classes.values():
            layout(rc)

    # --------------------------------------------------------------- resolve

    def get_class(self, name: str) -> RuntimeClass:
        rc = self.classes.get(name)
        if rc is None:
            raise LoadError(f"unknown class {name!r}")
        return rc

    def resolve_method(self, ref: MethodRef) -> MethodDef:
        rc = self.get_class(ref.class_name)
        m = rc.find_method(ref.name, ref.param_types)
        if m is None:
            raise LoadError(f"unresolved method {ref.signature()}")
        return m

    def resolve_field(self, ref: FieldRef) -> Tuple[RuntimeClass, int]:
        """Resolve to (declaring runtime class, slot index)."""
        rc = self.get_class(ref.class_name)
        if ref.is_static:
            cls: Optional[RuntimeClass] = rc
            while cls is not None:
                if ref.name in cls.static_slots:
                    return cls, cls.static_slots[ref.name]
                cls = cls.base
            raise LoadError(f"unresolved static field {ref.full_name}")
        slot = rc.field_slots.get(ref.name)
        if slot is None:
            raise LoadError(f"unresolved field {ref.full_name}")
        return rc, slot

    # ------------------------------------------------------------ allocation

    def new_instance(self, rc: RuntimeClass):
        fields = [self._field_default(t) for t in rc.field_types]
        if rc.is_value_type:
            return StructValue(rc, fields)
        return ObjectInstance(rc, fields)

    def _field_default(self, t: CType):
        return zero_value(t)

    def static_constructors(self) -> List[MethodDef]:
        """All ``.cctor`` methods in class-declaration order."""
        out: List[MethodDef] = []
        for name, classdef in self.assembly.classes.items():
            m = classdef.find_method(".cctor")
            if m is not None:
                out.append(m)
        return out

    @property
    def entry_point(self) -> Optional[MethodDef]:
        return self.assembly.entry_point
