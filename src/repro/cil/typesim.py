"""Static stack-kind simulation.

Both execution engines need to know, for every arithmetic/comparison/
conversion instruction, which numeric kind it operates on (``i4``, ``i8``,
``r4``, ``r8``) — the interpreter to apply the right wrapping semantics, the
JIT to tag MIR instructions with their cost class.  Verified CIL guarantees
consistent kinds at merge points, so one linear dataflow pass suffices.

Results are memoised on the method object (``method._stack_kinds``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import cts, opcodes as op
from .cts import CType
from .instructions import MethodRef
from .metadata import MethodDef

# stack kinds
I4, I8, R4, R8, REF = "i4", "i8", "r4", "r8", "ref"

_KIND_OF_TYPE = {
    "int8": I4, "uint8": I4, "int16": I4, "uint16": I4, "char": I4,
    "bool": I4, "int32": I4, "int64": I8, "float32": R4, "float64": R8,
}


def kind_of(t: CType) -> str:
    return _KIND_OF_TYPE.get(t.name, REF)


_CONV_RESULT = {
    op.CONV_I1: I4, op.CONV_U1: I4, op.CONV_I2: I4, op.CONV_U2: I4,
    op.CONV_I4: I4, op.CONV_I8: I8, op.CONV_R4: R4, op.CONV_R8: R8,
}

_BINARY = frozenset({op.ADD, op.SUB, op.MUL, op.DIV, op.REM, op.AND, op.OR, op.XOR})
_COMPARE = frozenset({op.CEQ, op.CGT, op.CLT})
_CMP_BRANCH = frozenset({op.BEQ, op.BNE, op.BGE, op.BGT, op.BLE, op.BLT})


def annotate(method: MethodDef) -> Dict[int, str]:
    """Return (and cache) index -> operand-kind for kind-sensitive opcodes.

    For binary/compare ops the kind is the (common) operand kind; for
    conversions it is the *source* kind; for ``neg``/``not``/``shl``/``shr``
    the single operand's kind; for ``ldc``s the literal kind.
    """
    cached = getattr(method, "_stack_kinds", None)
    if cached is not None:
        return cached

    body = method.body
    kinds: Dict[int, str] = {}
    arg_types: List[CType] = []
    if not method.is_static:
        arg_types.append(cts.named(method.declaring_class))
    arg_types.extend(method.param_types)

    states: Dict[int, Tuple[str, ...]] = {0: ()}
    work: List[int] = [0]
    for region in method.regions:
        entry: Tuple[str, ...] = (REF,) if region.kind == "catch" else ()
        if region.handler_start not in states:
            states[region.handler_start] = entry
            work.append(region.handler_start)

    while work:
        index = work.pop()
        stack = list(states[index])
        instr = body[index]
        code = instr.opcode
        nexts: List[int] = [index + 1]

        if code == op.LDC_I4:
            stack.append(I4)
            kinds[index] = I4
        elif code == op.LDC_I8:
            stack.append(I8)
            kinds[index] = I8
        elif code == op.LDC_R4:
            stack.append(R4)
            kinds[index] = R4
        elif code == op.LDC_R8:
            stack.append(R8)
            kinds[index] = R8
        elif code in (op.LDSTR, op.LDNULL):
            stack.append(REF)
        elif code == op.LDLOC:
            stack.append(kind_of(method.locals[instr.operand].var_type))
        elif code == op.STLOC:
            kinds[index] = kind_of(method.locals[instr.operand].var_type)
            stack.pop()
        elif code == op.LDARG:
            stack.append(kind_of(arg_types[instr.operand]))
        elif code == op.STARG:
            kinds[index] = kind_of(arg_types[instr.operand])
            stack.pop()
        elif code == op.LDFLD:
            stack.pop()
            stack.append(kind_of(instr.operand.field_type))
        elif code == op.STFLD:
            kinds[index] = kind_of(instr.operand.field_type)
            stack.pop(); stack.pop()
        elif code == op.LDSFLD:
            stack.append(kind_of(instr.operand.field_type))
        elif code == op.STSFLD:
            kinds[index] = kind_of(instr.operand.field_type)
            stack.pop()
        elif code == op.NEWARR:
            stack.pop()
            stack.append(REF)
        elif code == op.LDLEN:
            stack.pop()
            stack.append(I4)
        elif code == op.LDELEM:
            stack.pop(); stack.pop()
            stack.append(kind_of(instr.operand))
            kinds[index] = kind_of(instr.operand)
        elif code == op.STELEM:
            kinds[index] = kind_of(instr.operand)
            stack.pop(); stack.pop(); stack.pop()
        elif code == op.NEWARR_MD:
            _e, rank = instr.operand
            del stack[len(stack) - rank:]
            stack.append(REF)
        elif code == op.LDELEM_MD:
            elem, rank = instr.operand
            del stack[len(stack) - rank - 1:]
            stack.append(kind_of(elem))
            kinds[index] = kind_of(elem)
        elif code == op.STELEM_MD:
            elem, rank = instr.operand
            kinds[index] = kind_of(elem)
            del stack[len(stack) - rank - 2:]
        elif code in _BINARY:
            b = stack.pop()
            a = stack.pop()
            k = a if a == b else (R8 if R8 in (a, b) else R4 if R4 in (a, b) else I8 if I8 in (a, b) else I4)
            kinds[index] = k
            stack.append(k)
        elif code in (op.SHL, op.SHR, op.SHR_UN):
            stack.pop()
            a = stack.pop()
            kinds[index] = a
            stack.append(a)
        elif code in (op.NEG, op.NOT):
            a = stack.pop()
            kinds[index] = a
            stack.append(a)
        elif code in _COMPARE:
            b = stack.pop()
            a = stack.pop()
            kinds[index] = a if a == b else (R8 if R8 in (a, b) else a)
            stack.append(I4)
        elif code in _CONV_RESULT:
            a = stack.pop()
            kinds[index] = a  # source kind
            stack.append(_CONV_RESULT[code])
        elif code == op.BR:
            nexts = [instr.operand]
        elif code in (op.BRTRUE, op.BRFALSE):
            kinds[index] = stack.pop()
            nexts = [instr.operand, index + 1]
        elif code in _CMP_BRANCH:
            b = stack.pop()
            a = stack.pop()
            kinds[index] = a if a == b else (R8 if R8 in (a, b) else a)
            nexts = [instr.operand, index + 1]
        elif code == op.SWITCH:
            stack.pop()
            nexts = list(instr.operand) + [index + 1]
        elif code == op.RET:
            if method.return_type is not cts.VOID:
                stack.pop()
            nexts = []
        elif code in (op.CALL, op.CALLVIRT):
            ref: MethodRef = instr.operand
            n = len(ref.param_types) + (0 if ref.is_static else 1)
            if n:
                del stack[len(stack) - n:]
            if ref.return_type is not cts.VOID:
                stack.append(kind_of(ref.return_type))
        elif code == op.NEWOBJ:
            ref = instr.operand
            n = len(ref.param_types)
            if n:
                del stack[len(stack) - n:]
            stack.append(REF)
        elif code == op.BOX:
            kinds[index] = kind_of(instr.operand)
            stack.pop()
            stack.append(REF)
        elif code == op.UNBOX:
            stack.pop()
            stack.append(kind_of(instr.operand))
            kinds[index] = kind_of(instr.operand)
        elif code in (op.CASTCLASS, op.ISINST):
            pass  # ref -> ref
        elif code == op.DUP:
            stack.append(stack[-1])
        elif code == op.POP:
            stack.pop()
        elif code == op.STRUCT_COPY:
            pass
        elif code == op.THROW:
            stack.pop()
            nexts = []
        elif code == op.RETHROW:
            nexts = []
        elif code == op.LEAVE:
            stack = []
            nexts = [instr.operand]
        elif code == op.ENDFINALLY:
            nexts = []
        elif code == op.NOP:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError(f"typesim: unhandled {instr.mnemonic}")

        frozen = tuple(stack)
        for t in nexts:
            if t not in states:
                states[t] = frozen
                work.append(t)

    method._stack_kinds = kinds
    method._stack_shapes = states
    return kinds


def stack_shapes(method: MethodDef) -> Dict[int, Tuple[str, ...]]:
    """index -> tuple of stack kinds on entry to that instruction (only for
    reachable instructions).  Computed together with :func:`annotate`."""
    annotate(method)
    return method._stack_shapes
