"""Common Type System (CTS) subset.

ECMA-335 partition I defines a rich type system; the benchmarks in this
reproduction exercise the numeric primitives, ``bool``, ``object``/``string``
references, user classes and value types (structs), single-dimensional
("SZ") arrays, jagged arrays (SZ arrays of SZ arrays) and true
multidimensional arrays.

Types are interned: primitive types are singletons and composite types are
cached, so identity comparison (``is``) works everywhere in the compiler, the
verifier and the JIT.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class CType:
    """Base class for every CTS type."""

    #: short display name, e.g. ``int32`` or ``float64[,]``
    name: str = "?"

    @property
    def is_primitive(self) -> bool:
        return False

    @property
    def is_numeric(self) -> bool:
        return False

    @property
    def is_integral(self) -> bool:
        return False

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_reference(self) -> bool:
        return False

    @property
    def is_array(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CType {self.name}>"

    def __str__(self) -> str:
        return self.name


class PrimitiveType(CType):
    """One of the built-in VES data types."""

    def __init__(self, name: str, kind: str, size: int) -> None:
        self.name = name
        #: one of ``int``, ``float``, ``bool``, ``char``, ``void``
        self.kind = kind
        #: size in bytes as laid out on the (simulated) stack/heap
        self.size = size

    @property
    def is_primitive(self) -> bool:
        return True

    @property
    def is_numeric(self) -> bool:
        return self.kind in ("int", "float", "char")

    @property
    def is_integral(self) -> bool:
        return self.kind in ("int", "char")

    @property
    def is_float(self) -> bool:
        return self.kind == "float"


# The VES evaluation-stack primitives (ECMA-335 I.12.1).  Small integer
# types (int8/int16 and unsigned flavours) exist as *storage* types; on the
# evaluation stack they widen to int32, which the Cast micro-benchmark relies
# on.
VOID = PrimitiveType("void", "void", 0)
BOOL = PrimitiveType("bool", "bool", 1)
CHAR = PrimitiveType("char", "char", 2)
INT8 = PrimitiveType("int8", "int", 1)
UINT8 = PrimitiveType("uint8", "int", 1)
INT16 = PrimitiveType("int16", "int", 2)
UINT16 = PrimitiveType("uint16", "int", 2)
INT32 = PrimitiveType("int32", "int", 4)
INT64 = PrimitiveType("int64", "int", 8)
FLOAT32 = PrimitiveType("float32", "float", 4)
FLOAT64 = PrimitiveType("float64", "float", 8)


class ObjectType(CType):
    """``System.Object`` — the root of the reference hierarchy."""

    name = "object"

    @property
    def is_reference(self) -> bool:
        return True


class StringType(CType):
    """``System.String`` (immutable, interned literals)."""

    name = "string"

    @property
    def is_reference(self) -> bool:
        return True


class NullType(CType):
    """The type of the ``null`` literal; assignable to any reference type."""

    name = "null"

    @property
    def is_reference(self) -> bool:
        return True


OBJECT = ObjectType()
STRING = StringType()
NULL = NullType()


class NamedType(CType):
    """A user-defined class or struct, referenced by its qualified name.

    Whether the name denotes a value type is a property of the *definition*
    (``ClassDef.is_value_type``); a ``NamedType`` is just a symbolic
    reference, mirroring how CIL metadata tokens work.  The front end stamps
    ``value_type_hint`` during type checking so the code generator can pick
    value/reference semantics without a loader.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.value_type_hint: bool = False

    @property
    def is_reference(self) -> bool:
        return not self.value_type_hint

    @property
    def is_value_type(self) -> bool:
        return self.value_type_hint


class ArrayType(CType):
    """An array type: rank 1 is an SZ vector, rank >= 2 is multidimensional.

    Jagged arrays are simply ``ArrayType(ArrayType(elem, 1), 1)``.
    """

    def __init__(self, element: CType, rank: int = 1) -> None:
        if rank < 1:
            raise ValueError("array rank must be >= 1")
        self.element = element
        self.rank = rank
        commas = "," * (rank - 1)
        self.name = f"{element.name}[{commas}]"

    @property
    def is_reference(self) -> bool:
        return True

    @property
    def is_array(self) -> bool:
        return True


_named_cache: Dict[str, NamedType] = {}
_array_cache: Dict[Tuple[int, int], ArrayType] = {}


# --------------------------------------------------------------- serialization
#
# Types are compared by identity throughout the verifier, JIT and engines, so
# deserializing an Assembly (persistent compile cache, process-pool workers)
# must yield the *interned* instances of this process, never fresh copies.
# Every CType therefore reduces to a re-interning constructor call.


def _restore_primitive(name: str) -> CType:
    return BY_NAME[name]


def _restore_singleton(name: str) -> CType:
    return {"object": OBJECT, "string": STRING, "null": NULL}[name]


def _restore_named(name: str, value_type_hint: bool) -> "NamedType":
    t = named(name)
    # re-stamp what the compiling process's front end knew: the hint drives
    # value/reference semantics in the engines (array element copying, box
    # behaviour), so a worker that never compiled this program needs it too
    t.value_type_hint = value_type_hint
    return t


def _primitive_reduce(self):
    return (_restore_primitive, (self.name,))


def _singleton_reduce(self):
    return (_restore_singleton, (self.name,))


PrimitiveType.__reduce__ = _primitive_reduce
ObjectType.__reduce__ = _singleton_reduce
StringType.__reduce__ = _singleton_reduce
NullType.__reduce__ = _singleton_reduce
NamedType.__reduce__ = lambda self: (_restore_named, (self.name, self.value_type_hint))
ArrayType.__reduce__ = lambda self: (array_of, (self.element, self.rank))


def named(name: str) -> NamedType:
    """Return the interned :class:`NamedType` for ``name``."""
    t = _named_cache.get(name)
    if t is None:
        t = NamedType(name)
        _named_cache[name] = t
    return t


def array_of(element: CType, rank: int = 1) -> ArrayType:
    """Return the interned :class:`ArrayType` over ``element`` with ``rank``."""
    key = (id(element), rank)
    t = _array_cache.get(key)
    if t is None:
        t = ArrayType(element, rank)
        _array_cache[key] = t
    return t


#: keyword -> type mapping used by the front end and the IL assembler
BY_NAME: Dict[str, CType] = {
    "void": VOID,
    "bool": BOOL,
    "char": CHAR,
    "int8": INT8,
    "sbyte": INT8,
    "uint8": UINT8,
    "byte": UINT8,
    "int16": INT16,
    "short": INT16,
    "uint16": UINT16,
    "ushort": UINT16,
    "int32": INT32,
    "int": INT32,
    "int64": INT64,
    "long": INT64,
    "float32": FLOAT32,
    "float": FLOAT32,
    "float64": FLOAT64,
    "double": FLOAT64,
    "object": OBJECT,
    "string": STRING,
}


def stack_type(t: CType) -> CType:
    """Widen a storage type to its evaluation-stack type (ECMA-335 I.12.1).

    Small integers, ``bool`` and ``char`` all live on the stack as int32.
    """
    if t in (BOOL, CHAR, INT8, UINT8, INT16, UINT16):
        return INT32
    return t


def is_assignable(src: CType, dst: CType) -> bool:
    """Verifier-level assignability: exact stack type match or null-to-ref.

    Class hierarchy assignability is checked at load time when definitions
    are available; at the pure-type level any named reference is compatible
    with any other (CIL verification of object types is similarly deferred
    to ``castclass`` semantics in this subset).
    """
    src = stack_type(src)
    dst = stack_type(dst)
    if src is dst:
        return True
    if src is NULL and dst.is_reference:
        return True
    if dst is OBJECT and src.is_reference:
        return True
    if src.is_reference and dst.is_reference:
        return True  # refined by the loader
    # float32 values are representable on the stack as F (float64-capable)
    if src.is_float and dst.is_float:
        return True
    return False
