"""Assembly-level metadata: classes, fields, methods, the assembly itself.

This mirrors the self-describing-unit design rule of the CLI: an
:class:`Assembly` carries everything a Virtual Execution System needs to
load, verify, JIT-compile and run the code, with no out-of-band information.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CilError
from .cts import CType, VOID
from .instructions import ExceptionRegion, Instruction, MethodRef

#: serialization format tag for :meth:`Assembly.to_bytes`; bump on any
#: layout change of the metadata classes so stale payloads are rejected
#: instead of deserializing into the wrong shape
ASSEMBLY_WIRE_FORMAT = b"repro.cil.assembly/1\n"


@dataclass
class FieldDef:
    name: str
    field_type: CType
    is_static: bool = False

    #: slot index within the object layout / static table, set by the loader
    slot: int = -1


@dataclass
class LocalVar:
    name: str
    var_type: CType


@dataclass
class MethodDef:
    """A method definition with its CIL body."""

    name: str
    param_types: List[CType]
    return_type: CType
    is_static: bool = True
    is_virtual: bool = False
    is_override: bool = False
    is_ctor: bool = False
    param_names: List[str] = field(default_factory=list)
    locals: List[LocalVar] = field(default_factory=list)
    body: List[Instruction] = field(default_factory=list)
    regions: List[ExceptionRegion] = field(default_factory=list)
    max_stack: int = 0

    #: owning class name; stamped when added to a ClassDef
    declaring_class: str = ""
    #: vtable slot for virtual methods, assigned by the loader
    vtable_slot: int = -1

    @property
    def full_name(self) -> str:
        return f"{self.declaring_class}::{self.name}"

    @property
    def arg_count(self) -> int:
        """Number of arguments including the implicit ``this``."""
        return len(self.param_types) + (0 if self.is_static else 1)

    def as_ref(self) -> MethodRef:
        return MethodRef(
            class_name=self.declaring_class,
            name=self.name,
            param_types=tuple(self.param_types),
            return_type=self.return_type,
            is_static=self.is_static,
        )

    def signature_key(self) -> Tuple[str, Tuple[str, ...]]:
        """Name + parameter type names; used for overload resolution."""
        return (self.name, tuple(t.name for t in self.param_types))


@dataclass
class ClassDef:
    """A class or value-type (struct) definition."""

    name: str
    base_name: Optional[str] = None  # None => System.Object
    is_value_type: bool = False
    fields: List[FieldDef] = field(default_factory=list)
    methods: List[MethodDef] = field(default_factory=list)

    def add_field(self, f: FieldDef) -> FieldDef:
        if any(existing.name == f.name for existing in self.fields):
            raise CilError(f"duplicate field {self.name}::{f.name}")
        self.fields.append(f)
        return f

    def add_method(self, m: MethodDef) -> MethodDef:
        m.declaring_class = self.name
        if any(existing.signature_key() == m.signature_key() for existing in self.methods):
            raise CilError(f"duplicate method {m.full_name}({len(m.param_types)} params)")
        self.methods.append(m)
        return m

    def find_method(self, name: str, nparams: Optional[int] = None) -> Optional[MethodDef]:
        for m in self.methods:
            if m.name == name and (nparams is None or len(m.param_types) == nparams):
                return m
        return None

    def find_field(self, name: str) -> Optional[FieldDef]:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def instance_fields(self) -> List[FieldDef]:
        return [f for f in self.fields if not f.is_static]

    def static_fields(self) -> List[FieldDef]:
        return [f for f in self.fields if f.is_static]


class Assembly:
    """A self-describing unit of deployment: the set of class definitions
    plus an optional entry point."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.classes: Dict[str, ClassDef] = {}
        self.entry_point: Optional[MethodDef] = None

    def add_class(self, cls: ClassDef) -> ClassDef:
        if cls.name in self.classes:
            raise CilError(f"duplicate class {cls.name} in assembly {self.name}")
        self.classes[cls.name] = cls
        return cls

    def get_class(self, name: str) -> ClassDef:
        try:
            return self.classes[name]
        except KeyError:
            raise CilError(f"assembly {self.name} has no class {name!r}") from None

    def find_method(self, class_name: str, method_name: str) -> MethodDef:
        cls = self.get_class(class_name)
        m = cls.find_method(method_name)
        if m is None:
            raise CilError(f"class {class_name} has no method {method_name!r}")
        return m

    def set_entry_point(self, class_name: str, method_name: str = "Main") -> None:
        m = self.find_method(class_name, method_name)
        if not m.is_static:
            raise CilError("entry point must be static")
        self.entry_point = m

    def all_methods(self) -> List[MethodDef]:
        out: List[MethodDef] = []
        for cls in self.classes.values():
            out.extend(cls.methods)
        return out

    # ------------------------------------------------------------ serialization

    def to_bytes(self) -> bytes:
        """Serialize the whole image (classes, bodies, entry point) to a
        self-describing byte string; the exact inverse of :meth:`from_bytes`.

        This is the unit the persistent compile cache
        (:mod:`repro.parallel.cache`) stores and every pool worker loads: a
        round-tripped assembly must be indistinguishable from a freshly
        compiled one.  Protocol 4 is pinned so payloads written by one
        Python minor version load on another.
        """
        return ASSEMBLY_WIRE_FORMAT + pickle.dumps(self, protocol=4)

    @staticmethod
    def from_bytes(data: bytes) -> "Assembly":
        if not data.startswith(ASSEMBLY_WIRE_FORMAT):
            raise CilError(
                "not a serialized assembly (missing "
                f"{ASSEMBLY_WIRE_FORMAT!r} header)"
            )
        try:
            assembly = pickle.loads(data[len(ASSEMBLY_WIRE_FORMAT):])
        except Exception as exc:
            raise CilError(f"corrupt serialized assembly: {exc}") from exc
        if not isinstance(assembly, Assembly):
            raise CilError(
                f"serialized payload is {type(assembly).__name__}, not Assembly"
            )
        return assembly

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Assembly {self.name}: {len(self.classes)} classes>"
