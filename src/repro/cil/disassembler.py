"""Textual CIL disassembly, formatted like the paper's Table 5.

Example output for the integer-division loop (compare paper Table 5)::

    IL_0000: ldc.i4     0x2710
    IL_0001: stloc.0
    ...
    IL_0038: ldloc.1
    IL_0039: ldloc.2
    IL_003a: div
    IL_003b: stloc.1

Offsets here are instruction indices (our in-memory form has no byte
encoding); the ``IL_xxxx`` rendering keeps the visual correspondence.
"""

from __future__ import annotations

from typing import List

from . import opcodes as op
from .cts import CType
from .instructions import FieldRef, Instruction, MethodRef
from .metadata import Assembly, ClassDef, MethodDef


def _fmt_operand(instr: Instruction) -> str:
    code = instr.opcode
    operand = instr.operand
    if operand is None:
        return ""
    if code == op.LDC_I4:
        return f"0x{operand & 0xFFFFFFFF:x}" if abs(operand) > 8 else str(operand)
    if code == op.LDC_I8:
        return f"0x{operand & 0xFFFFFFFFFFFFFFFF:x}"
    if code in (op.LDC_R4, op.LDC_R8):
        return repr(float(operand))
    if code == op.LDSTR:
        return '"' + str(operand).replace('"', '\\"') + '"'
    if code in (op.LDLOC, op.STLOC, op.LDARG, op.STARG):
        return str(operand)
    if isinstance(operand, MethodRef):
        return operand.signature()
    if isinstance(operand, FieldRef):
        return str(operand)
    if isinstance(operand, CType):
        return operand.name
    if code in op.BRANCHES:
        return f"IL_{operand:04x}"
    if code == op.SWITCH:
        return "(" + ", ".join(f"IL_{t:04x}" for t in operand) + ")"
    if isinstance(operand, tuple):  # (type, rank)
        elem, rank = operand
        return f"{elem.name}[{',' * (rank - 1)}]"
    return str(operand)


def disassemble_body(method: MethodDef) -> List[str]:
    """Disassemble a method body to a list of lines."""
    lines: List[str] = []
    for i, instr in enumerate(method.body):
        operand = _fmt_operand(instr)
        if operand:
            lines.append(f"IL_{i:04x}: {instr.mnemonic:<12} {operand}")
        else:
            lines.append(f"IL_{i:04x}: {instr.mnemonic}")
    return lines


def disassemble_method(method: MethodDef) -> str:
    """Full method disassembly with header, locals and exception regions."""
    flags = []
    if method.is_static:
        flags.append("static")
    if method.is_virtual:
        flags.append("virtual")
    if method.is_override:
        flags.append("override")
    params = ", ".join(
        f"{t.name} {n}"
        for t, n in zip(
            method.param_types,
            method.param_names or [f"a{i}" for i in range(len(method.param_types))],
        )
    )
    header = (
        f".method {' '.join(flags)} {method.return_type.name} "
        f"{method.full_name}({params})"
    ).replace("  ", " ")
    out = [header, "{", f"  .maxstack {method.max_stack}"]
    if method.locals:
        decls = ", ".join(f"{v.var_type.name} {v.name}" for v in method.locals)
        out.append(f"  .locals ({decls})")
    for region in method.regions:
        out.append(
            f"  .try IL_{region.try_start:04x}..IL_{region.try_end:04x} "
            f"{region.kind} "
            + (region.catch_type or "")
            + f" handler IL_{region.handler_start:04x}..IL_{region.handler_end:04x}"
        )
    out.extend("  " + line for line in disassemble_body(method))
    out.append("}")
    return "\n".join(out)


def disassemble_class(cls: ClassDef) -> str:
    kind = ".struct" if cls.is_value_type else ".class"
    base = f" extends {cls.base_name}" if cls.base_name else ""
    out = [f"{kind} {cls.name}{base}", "{"]
    for f in cls.fields:
        static = ".static " if f.is_static else ""
        out.append(f"  .field {static}{f.field_type.name} {f.name}")
    for m in cls.methods:
        out.append("")
        out.extend("  " + line for line in disassemble_method(m).splitlines())
    out.append("}")
    return "\n".join(out)


def disassemble_assembly(assembly: Assembly) -> str:
    out = [f".assembly {assembly.name}"]
    if assembly.entry_point is not None:
        out.append(f".entrypoint {assembly.entry_point.full_name}")
    for cls in assembly.classes.values():
        out.append("")
        out.append(disassemble_class(cls))
    return "\n".join(out)
