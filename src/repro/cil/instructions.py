"""Instruction and operand reference objects.

An :class:`Instruction` is a resolved (opcode, operand) pair; branch targets
are integer instruction indices (the builder resolves labels).  Method and
field operands are symbolic references resolved by the loader, mirroring
metadata tokens in a real CIL image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from . import opcodes as op
from .cts import CType


@dataclass(frozen=True)
class MethodRef:
    """A symbolic reference to a method (a MemberRef token).

    ``class_name`` of ``"System.Math"``/``"System.Console"`` etc. denote
    intrinsic runtime classes handled by the VES directly.
    """

    class_name: str
    name: str
    param_types: Tuple[CType, ...]
    return_type: CType
    is_static: bool = True

    @property
    def full_name(self) -> str:
        return f"{self.class_name}::{self.name}"

    def signature(self) -> str:
        params = ", ".join(t.name for t in self.param_types)
        prefix = "" if self.is_static else "instance "
        return f"{prefix}{self.return_type.name} {self.full_name}({params})"

    def __str__(self) -> str:
        return self.signature()


@dataclass(frozen=True)
class FieldRef:
    """A symbolic reference to a field."""

    class_name: str
    name: str
    field_type: CType
    is_static: bool = False

    @property
    def full_name(self) -> str:
        return f"{self.class_name}::{self.name}"

    def __str__(self) -> str:
        return f"{self.field_type.name} {self.full_name}"


@dataclass
class Instruction:
    """One CIL instruction.

    ``operand`` is ``None``, an int/float/str constant, a local/arg index,
    a :class:`FieldRef`/:class:`MethodRef`, a :class:`~repro.cil.cts.CType`,
    a ``(CType, rank)`` tuple, a branch-target index, or a list of targets
    for ``switch``.
    """

    opcode: int
    operand: object = None
    #: source line from the front end, carried through for diagnostics
    line: int = 0

    @property
    def mnemonic(self) -> str:
        return op.mnemonic(self.opcode)

    def __repr__(self) -> str:
        if self.operand is None:
            return self.mnemonic
        return f"{self.mnemonic} {self.operand!r}"


# Exception handler kinds
CATCH = "catch"
FINALLY = "finally"


@dataclass
class ExceptionRegion:
    """A protected region and its handler (ECMA-335 II.25.4.6 subset).

    All offsets are instruction indices; ``try_end``/``handler_end`` are
    exclusive.  ``catch_type`` is the managed exception class name for
    ``catch`` regions and ``None`` for ``finally``.
    """

    kind: str
    try_start: int
    try_end: int
    handler_start: int
    handler_end: int
    catch_type: Optional[str] = None

    def covers(self, index: int) -> bool:
        return self.try_start <= index < self.try_end

    def in_handler(self, index: int) -> bool:
        return self.handler_start <= index < self.handler_end


def successors(body: Sequence[Instruction], index: int) -> List[int]:
    """Control-flow successors of instruction ``index`` within ``body``."""
    instr = body[index]
    code = instr.opcode
    out: List[int] = []
    if code in (op.BR, op.LEAVE):
        out.append(instr.operand)
    elif code in op.CONDITIONAL_BRANCHES:
        out.append(instr.operand)
        out.append(index + 1)
    elif code == op.SWITCH:
        out.extend(instr.operand)
        out.append(index + 1)
    elif code in (op.RET, op.THROW, op.RETHROW, op.ENDFINALLY):
        pass
    else:
        out.append(index + 1)
    return out
