"""CIL verifier: abstract interpretation of the evaluation stack.

The CLI design requires that type behaviour be *verifiable*; this verifier
implements the subset relevant to our instruction set: operand-kind checks,
local/argument bounds, branch-target validity, stack-type simulation with
merge-point consistency, and arithmetic operand compatibility (int32/int64/
float never mix without an explicit conversion, exactly the rule csc's
output obeys).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import VerifyError
from . import cts, opcodes as op
from .cts import CType
from .instructions import CATCH, FieldRef, Instruction, MethodRef
from .metadata import Assembly, MethodDef

# Arithmetic result categories on the evaluation stack
_NUMERIC = (cts.INT32, cts.INT64, cts.FLOAT32, cts.FLOAT64)


def _binary_result(a: CType, b: CType, where: str) -> CType:
    a = cts.stack_type(a)
    b = cts.stack_type(b)
    if a.is_float and b.is_float:
        # F type: widest of the two
        return cts.FLOAT64 if cts.FLOAT64 in (a, b) else cts.FLOAT32
    if a is b and a in (cts.INT32, cts.INT64):
        return a
    raise VerifyError(f"{where}: operand type mismatch {a.name} vs {b.name}")


def _shift_result(a: CType, b: CType, where: str) -> CType:
    a = cts.stack_type(a)
    b = cts.stack_type(b)
    if a in (cts.INT32, cts.INT64) and b is cts.INT32:
        return a
    raise VerifyError(f"{where}: shift requires int<<int32, got {a.name}/{b.name}")


def _comparable(a: CType, b: CType, where: str) -> None:
    a = cts.stack_type(a)
    b = cts.stack_type(b)
    if a.is_float and b.is_float:
        return
    if a is b and a in (cts.INT32, cts.INT64):
        return
    if a.is_reference and b.is_reference:
        return
    raise VerifyError(f"{where}: cannot compare {a.name} with {b.name}")


class _State:
    __slots__ = ("stack",)

    def __init__(self, stack: Tuple[CType, ...]) -> None:
        self.stack = stack


def verify_method(method: MethodDef, assembly: Optional[Assembly] = None) -> None:
    """Verify one method body; raises :class:`VerifyError` on failure."""
    body = method.body
    if not body:
        if method.return_type is not cts.VOID:
            raise VerifyError(f"{method.full_name}: empty body for non-void method")
        return
    nlocals = len(method.locals)
    nargs = method.arg_count
    arg_types: List[CType] = []
    if not method.is_static:
        arg_types.append(cts.named(method.declaring_class))
    arg_types.extend(method.param_types)

    where = method.full_name
    states: Dict[int, Tuple[CType, ...]] = {0: ()}
    work: List[int] = [0]
    for region in method.regions:
        if not (0 <= region.try_start <= region.try_end <= len(body)):
            raise VerifyError(f"{where}: bad try range")
        if not (0 <= region.handler_start <= region.handler_end <= len(body)):
            raise VerifyError(f"{where}: bad handler range")
        entry: Tuple[CType, ...]
        if region.kind == CATCH:
            entry = (cts.named(region.catch_type or "System.Exception"),)
        else:
            entry = ()
        if region.handler_start not in states:
            states[region.handler_start] = entry
            work.append(region.handler_start)

    def push_state(target: int, stack: Tuple[CType, ...]) -> None:
        if target == len(body):
            # falling through (or branching) exactly past the last
            # instruction is a distinct, more useful diagnosis than a
            # wild branch target
            raise VerifyError(f"{where}: control falls off end of method")
        if target > len(body) or target < 0:
            raise VerifyError(f"{where}: branch target {target} out of range")
        prev = states.get(target)
        if prev is None:
            states[target] = stack
            work.append(target)
        else:
            if len(prev) != len(stack):
                raise VerifyError(
                    f"{where}: stack depth mismatch at {target}: {len(prev)} vs {len(stack)}"
                )
            # merge: require assignability both ways at the stack-type level
            for x, y in zip(prev, stack):
                if cts.stack_type(x) is not cts.stack_type(y) and not (
                    x.is_reference and y.is_reference
                ):
                    if x.is_float and y.is_float:
                        continue
                    raise VerifyError(
                        f"{where}: stack type mismatch at {target}: {x.name} vs {y.name}"
                    )

    while work:
        index = work.pop()
        stack = list(states[index])
        instr = body[index]
        code = instr.opcode
        label = f"{where}@{index}:{instr.mnemonic}"

        def pop(n: int = 1) -> List[CType]:
            if len(stack) < n:
                raise VerifyError(f"{label}: stack underflow")
            popped = stack[len(stack) - n :]
            del stack[len(stack) - n :]
            return popped

        next_targets: List[int] = [index + 1]

        if code == op.NOP:
            pass
        elif code == op.LDC_I4:
            if not isinstance(instr.operand, int):
                raise VerifyError(f"{label}: ldc.i4 needs int operand")
            stack.append(cts.INT32)
        elif code == op.LDC_I8:
            stack.append(cts.INT64)
        elif code == op.LDC_R4:
            stack.append(cts.FLOAT32)
        elif code == op.LDC_R8:
            stack.append(cts.FLOAT64)
        elif code == op.LDSTR:
            stack.append(cts.STRING)
        elif code == op.LDNULL:
            stack.append(cts.NULL)
        elif code == op.LDLOC:
            i = instr.operand
            if not isinstance(i, int) or not 0 <= i < nlocals:
                raise VerifyError(f"{label}: bad local index {i}")
            stack.append(cts.stack_type(method.locals[i].var_type))
        elif code == op.STLOC:
            i = instr.operand
            if not isinstance(i, int) or not 0 <= i < nlocals:
                raise VerifyError(f"{label}: bad local index {i}")
            (v,) = pop()
            if not cts.is_assignable(v, method.locals[i].var_type):
                raise VerifyError(
                    f"{label}: cannot store {v.name} into {method.locals[i].var_type.name}"
                )
        elif code == op.LDARG:
            i = instr.operand
            if not isinstance(i, int) or not 0 <= i < nargs:
                raise VerifyError(f"{label}: bad arg index {i}")
            stack.append(cts.stack_type(arg_types[i]))
        elif code == op.STARG:
            i = instr.operand
            if not isinstance(i, int) or not 0 <= i < nargs:
                raise VerifyError(f"{label}: bad arg index {i}")
            pop()
        elif code in (op.LDFLD, op.STFLD, op.LDSFLD, op.STSFLD):
            ref = instr.operand
            if not isinstance(ref, FieldRef):
                raise VerifyError(f"{label}: field opcode needs FieldRef")
            if code == op.LDFLD:
                (obj,) = pop()
                if not obj.is_reference and not isinstance(obj, cts.NamedType):
                    raise VerifyError(f"{label}: ldfld on non-object {obj.name}")
                stack.append(cts.stack_type(ref.field_type))
            elif code == op.STFLD:
                v, = pop()
                obj, = pop()
                if not cts.is_assignable(v, ref.field_type):
                    raise VerifyError(
                        f"{label}: cannot store {v.name} into field {ref.field_type.name}"
                    )
            elif code == op.LDSFLD:
                stack.append(cts.stack_type(ref.field_type))
            else:  # STSFLD
                (v,) = pop()
                if not cts.is_assignable(v, ref.field_type):
                    raise VerifyError(
                        f"{label}: cannot store {v.name} into field {ref.field_type.name}"
                    )
        elif code == op.NEWARR:
            (n,) = pop()
            if cts.stack_type(n) is not cts.INT32:
                raise VerifyError(f"{label}: newarr length must be int32")
            stack.append(cts.array_of(instr.operand))
        elif code == op.LDLEN:
            (arr,) = pop()
            if not arr.is_array and arr is not cts.NULL:
                raise VerifyError(f"{label}: ldlen on non-array {arr.name}")
            stack.append(cts.INT32)
        elif code == op.LDELEM:
            idx, = pop()
            arr, = pop()
            if cts.stack_type(idx) is not cts.INT32:
                raise VerifyError(f"{label}: index must be int32")
            stack.append(cts.stack_type(instr.operand))
        elif code == op.STELEM:
            v, = pop()
            idx, = pop()
            arr, = pop()
            if cts.stack_type(idx) is not cts.INT32:
                raise VerifyError(f"{label}: index must be int32")
            if not cts.is_assignable(v, instr.operand):
                raise VerifyError(
                    f"{label}: cannot store {v.name} into {instr.operand.name}[]"
                )
        elif code == op.NEWARR_MD:
            elem, rank = instr.operand
            dims = pop(rank)
            for d in dims:
                if cts.stack_type(d) is not cts.INT32:
                    raise VerifyError(f"{label}: dimension must be int32")
            stack.append(cts.array_of(elem, rank))
        elif code == op.LDELEM_MD:
            elem, rank = instr.operand
            pop(rank)  # indices
            pop()  # array
            stack.append(cts.stack_type(elem))
        elif code == op.STELEM_MD:
            elem, rank = instr.operand
            v = pop()[0]
            pop(rank)
            pop()
            if not cts.is_assignable(v, elem):
                raise VerifyError(f"{label}: cannot store {v.name} into md array of {elem.name}")
        elif code in (op.ADD, op.SUB, op.MUL, op.DIV, op.REM):
            b, = pop()
            a, = pop()
            stack.append(_binary_result(a, b, label))
        elif code in (op.AND, op.OR, op.XOR):
            b, = pop()
            a, = pop()
            a, b = cts.stack_type(a), cts.stack_type(b)
            if a is not b or a not in (cts.INT32, cts.INT64):
                raise VerifyError(f"{label}: bitwise requires matching ints")
            stack.append(a)
        elif code in (op.SHL, op.SHR, op.SHR_UN):
            b, = pop()
            a, = pop()
            stack.append(_shift_result(a, b, label))
        elif code == op.NEG:
            (a,) = pop()
            a = cts.stack_type(a)
            if a not in _NUMERIC:
                raise VerifyError(f"{label}: neg on {a.name}")
            stack.append(a)
        elif code == op.NOT:
            (a,) = pop()
            a = cts.stack_type(a)
            if a not in (cts.INT32, cts.INT64):
                raise VerifyError(f"{label}: not on {a.name}")
            stack.append(a)
        elif code in (op.CEQ, op.CGT, op.CLT):
            b, = pop()
            a, = pop()
            _comparable(a, b, label)
            stack.append(cts.INT32)
        elif code in (
            op.CONV_I1, op.CONV_U1, op.CONV_I2, op.CONV_U2,
            op.CONV_I4, op.CONV_I8, op.CONV_R4, op.CONV_R8,
        ):
            (a,) = pop()
            a = cts.stack_type(a)
            if a not in _NUMERIC:
                raise VerifyError(f"{label}: conv on {a.name}")
            result = {
                op.CONV_I1: cts.INT32, op.CONV_U1: cts.INT32,
                op.CONV_I2: cts.INT32, op.CONV_U2: cts.INT32,
                op.CONV_I4: cts.INT32, op.CONV_I8: cts.INT64,
                op.CONV_R4: cts.FLOAT32, op.CONV_R8: cts.FLOAT64,
            }[code]
            stack.append(result)
        elif code == op.BR:
            next_targets = [instr.operand]
        elif code in (op.BRTRUE, op.BRFALSE):
            (a,) = pop()
            a = cts.stack_type(a)
            if a not in (cts.INT32, cts.INT64) and not a.is_reference:
                raise VerifyError(f"{label}: brtrue/brfalse on {a.name}")
            next_targets = [instr.operand, index + 1]
        elif code in (op.BEQ, op.BNE, op.BGE, op.BGT, op.BLE, op.BLT):
            b, = pop()
            a, = pop()
            _comparable(a, b, label)
            next_targets = [instr.operand, index + 1]
        elif code == op.SWITCH:
            (a,) = pop()
            if cts.stack_type(a) is not cts.INT32:
                raise VerifyError(f"{label}: switch selector must be int32")
            next_targets = list(instr.operand) + [index + 1]
        elif code == op.RET:
            if method.return_type is cts.VOID:
                if stack:
                    raise VerifyError(f"{label}: stack not empty at ret ({len(stack)})")
            else:
                (v,) = pop()
                if not cts.is_assignable(v, method.return_type):
                    raise VerifyError(
                        f"{label}: return type {v.name} != {method.return_type.name}"
                    )
                if stack:
                    raise VerifyError(f"{label}: stack not empty at ret")
            next_targets = []
        elif code in (op.CALL, op.CALLVIRT):
            ref = instr.operand
            if not isinstance(ref, MethodRef):
                raise VerifyError(f"{label}: call needs MethodRef")
            nparams = len(ref.param_types) + (0 if ref.is_static else 1)
            args = pop(nparams)
            expect: List[CType] = []
            if not ref.is_static:
                expect.append(cts.named(ref.class_name))
            expect.extend(ref.param_types)
            for got, want in zip(args, expect):
                if not cts.is_assignable(got, want):
                    raise VerifyError(
                        f"{label}: argument {got.name} not assignable to {want.name}"
                    )
            if ref.return_type is not cts.VOID:
                stack.append(cts.stack_type(ref.return_type))
        elif code == op.NEWOBJ:
            ref = instr.operand
            if not isinstance(ref, MethodRef):
                raise VerifyError(f"{label}: newobj needs MethodRef")
            pop(len(ref.param_types))
            stack.append(cts.named(ref.class_name))
        elif code == op.BOX:
            (v,) = pop()
            stack.append(cts.OBJECT)
        elif code == op.UNBOX:
            (v,) = pop()
            if not v.is_reference:
                raise VerifyError(f"{label}: unbox on non-reference {v.name}")
            stack.append(cts.stack_type(instr.operand))
        elif code in (op.CASTCLASS, op.ISINST):
            (v,) = pop()
            if not v.is_reference:
                raise VerifyError(f"{label}: castclass on non-reference {v.name}")
            stack.append(instr.operand if code == op.CASTCLASS else instr.operand)
        elif code == op.DUP:
            (v,) = pop()
            stack.append(v)
            stack.append(v)
        elif code == op.POP:
            pop()
        elif code == op.STRUCT_COPY:
            (v,) = pop()
            stack.append(v)
        elif code == op.THROW:
            (v,) = pop()
            if not v.is_reference:
                raise VerifyError(f"{label}: throw on non-reference {v.name}")
            next_targets = []
        elif code == op.RETHROW:
            in_catch = any(r.kind == CATCH and r.in_handler(index) for r in method.regions)
            if not in_catch:
                raise VerifyError(f"{label}: rethrow outside catch handler")
            next_targets = []
        elif code == op.LEAVE:
            stack.clear()
            next_targets = [instr.operand]
        elif code == op.ENDFINALLY:
            in_finally = any(
                r.kind == "finally" and r.in_handler(index) for r in method.regions
            )
            if not in_finally:
                raise VerifyError(f"{label}: endfinally outside finally handler")
            next_targets = []
        else:  # pragma: no cover - defensive
            raise VerifyError(f"{label}: unverifiable opcode")

        frozen = tuple(stack)
        for t in next_targets:
            push_state(t, frozen)

    # every instruction that falls off the end must be unreachable or flow-terminating
    last = body[-1]
    if (len(body) - 1) in states and last.opcode not in op.UNCONDITIONAL_FLOW and last.opcode not in op.CONDITIONAL_BRANCHES:
        raise VerifyError(f"{where}: control falls off end of method")


def verify_assembly(assembly: Assembly) -> int:
    """Verify every method in the assembly; returns the number verified."""
    count = 0
    for method in assembly.all_methods():
        verify_method(method, assembly)
        count += 1
    return count
