"""``repro.cil`` — an ECMA-335-subset Common Intermediate Language.

Public surface:

* :mod:`repro.cil.cts` — the Common Type System (interned types).
* :mod:`repro.cil.opcodes` — the instruction set.
* :class:`~repro.cil.metadata.Assembly` / ``ClassDef`` / ``MethodDef`` /
  ``FieldDef`` — self-describing metadata.
* :class:`~repro.cil.builder.MethodBuilder` — label-resolving IL emission.
* :func:`~repro.cil.verifier.verify_method` /
  :func:`~repro.cil.verifier.verify_assembly` — type-safety verification.
* :func:`~repro.cil.disassembler.disassemble_method` — Table-5-style text.
"""

from . import cts, opcodes
from .assembler import assemble
from .builder import Label, MethodBuilder
from .disassembler import (
    disassemble_assembly,
    disassemble_body,
    disassemble_class,
    disassemble_method,
)
from .instructions import (
    CATCH,
    FINALLY,
    ExceptionRegion,
    FieldRef,
    Instruction,
    MethodRef,
)
from .metadata import Assembly, ClassDef, FieldDef, LocalVar, MethodDef
from .verifier import verify_assembly, verify_method

__all__ = [
    "cts",
    "opcodes",
    "Label",
    "MethodBuilder",
    "Assembly",
    "ClassDef",
    "FieldDef",
    "LocalVar",
    "MethodDef",
    "Instruction",
    "MethodRef",
    "FieldRef",
    "ExceptionRegion",
    "CATCH",
    "FINALLY",
    "verify_method",
    "assemble",
    "verify_assembly",
    "disassemble_method",
    "disassemble_body",
    "disassemble_class",
    "disassemble_assembly",
]
