"""CIL opcode definitions (ECMA-335 partition III subset).

Opcodes are small integers for fast dispatch; ``OpInfo`` carries the static
stack effect used by the verifier and max-stack computation.  A stack effect
of ``None`` means the effect depends on the operand (calls, newobj, ...) and
is computed by :mod:`repro.cil.verifier`.

Deviations from ECMA-335, documented per DESIGN.md section 2:

* ``ldelem``/``stelem`` take the element type as an operand rather than
  having per-type encodings (matches the generic ``ldelem <token>`` form).
* Multidimensional array access uses dedicated ``newarr_md``/``ldelem_md``/
  ``stelem_md`` opcodes carrying ``(element_type, rank)`` instead of the
  pseudo-method calls (``Get``/``Set``/``.ctor``) real CIL emits; the JIT
  treats them exactly like the CLR treats those pseudo-methods.
* ``struct_copy`` makes value-type copy semantics explicit (real CIL uses a
  combination of ``ldobj``/``stobj``/``cpobj``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class OpInfo:
    code: int
    mnemonic: str
    #: number of values popped from the evaluation stack (None => dynamic)
    pops: Optional[int]
    #: number of values pushed (None => dynamic)
    pushes: Optional[int]
    #: operand kind: none|i4|i8|r4|r8|str|local|arg|field|method|type|target|
    #: switch|typerank
    operand: str


_ops: Dict[int, OpInfo] = {}
_by_name: Dict[str, OpInfo] = {}
_next = [0]


def _op(mnemonic: str, pops: Optional[int], pushes: Optional[int], operand: str = "none") -> int:
    code = _next[0]
    _next[0] += 1
    info = OpInfo(code, mnemonic, pops, pushes, operand)
    _ops[code] = info
    _by_name[mnemonic] = info
    return code


# --- constants -----------------------------------------------------------
NOP = _op("nop", 0, 0)
LDC_I4 = _op("ldc.i4", 0, 1, "i4")
LDC_I8 = _op("ldc.i8", 0, 1, "i8")
LDC_R4 = _op("ldc.r4", 0, 1, "r4")
LDC_R8 = _op("ldc.r8", 0, 1, "r8")
LDSTR = _op("ldstr", 0, 1, "str")
LDNULL = _op("ldnull", 0, 1)

# --- locals / arguments --------------------------------------------------
LDLOC = _op("ldloc", 0, 1, "local")
STLOC = _op("stloc", 1, 0, "local")
LDARG = _op("ldarg", 0, 1, "arg")
STARG = _op("starg", 1, 0, "arg")

# --- fields --------------------------------------------------------------
LDFLD = _op("ldfld", 1, 1, "field")
STFLD = _op("stfld", 2, 0, "field")
LDSFLD = _op("ldsfld", 0, 1, "field")
STSFLD = _op("stsfld", 1, 0, "field")

# --- arrays --------------------------------------------------------------
NEWARR = _op("newarr", 1, 1, "type")
LDLEN = _op("ldlen", 1, 1)
LDELEM = _op("ldelem", 2, 1, "type")
STELEM = _op("stelem", 3, 0, "type")
NEWARR_MD = _op("newarr.md", None, 1, "typerank")
LDELEM_MD = _op("ldelem.md", None, 1, "typerank")
STELEM_MD = _op("stelem.md", None, 0, "typerank")

# --- arithmetic / logic --------------------------------------------------
ADD = _op("add", 2, 1)
SUB = _op("sub", 2, 1)
MUL = _op("mul", 2, 1)
DIV = _op("div", 2, 1)
REM = _op("rem", 2, 1)
NEG = _op("neg", 1, 1)
AND = _op("and", 2, 1)
OR = _op("or", 2, 1)
XOR = _op("xor", 2, 1)
NOT = _op("not", 1, 1)
SHL = _op("shl", 2, 1)
SHR = _op("shr", 2, 1)
SHR_UN = _op("shr.un", 2, 1)

# --- comparison ----------------------------------------------------------
CEQ = _op("ceq", 2, 1)
CGT = _op("cgt", 2, 1)
CLT = _op("clt", 2, 1)

# --- conversions ---------------------------------------------------------
CONV_I1 = _op("conv.i1", 1, 1)
CONV_U1 = _op("conv.u1", 1, 1)
CONV_I2 = _op("conv.i2", 1, 1)
CONV_U2 = _op("conv.u2", 1, 1)
CONV_I4 = _op("conv.i4", 1, 1)
CONV_I8 = _op("conv.i8", 1, 1)
CONV_R4 = _op("conv.r4", 1, 1)
CONV_R8 = _op("conv.r8", 1, 1)

# --- control flow --------------------------------------------------------
BR = _op("br", 0, 0, "target")
BRTRUE = _op("brtrue", 1, 0, "target")
BRFALSE = _op("brfalse", 1, 0, "target")
BEQ = _op("beq", 2, 0, "target")
BNE = _op("bne.un", 2, 0, "target")
BGE = _op("bge", 2, 0, "target")
BGT = _op("bgt", 2, 0, "target")
BLE = _op("ble", 2, 0, "target")
BLT = _op("blt", 2, 0, "target")
SWITCH = _op("switch", 1, 0, "switch")
RET = _op("ret", None, 0)

# --- calls / objects -----------------------------------------------------
CALL = _op("call", None, None, "method")
CALLVIRT = _op("callvirt", None, None, "method")
NEWOBJ = _op("newobj", None, 1, "method")
BOX = _op("box", 1, 1, "type")
UNBOX = _op("unbox", 1, 1, "type")
CASTCLASS = _op("castclass", 1, 1, "type")
ISINST = _op("isinst", 1, 1, "type")
DUP = _op("dup", 1, 2)
POP = _op("pop", 1, 0)
STRUCT_COPY = _op("struct.copy", 1, 1, "type")

# --- exceptions ----------------------------------------------------------
THROW = _op("throw", 1, 0)
RETHROW = _op("rethrow", 0, 0)
LEAVE = _op("leave", 0, 0, "target")
ENDFINALLY = _op("endfinally", 0, 0)


def info(code: int) -> OpInfo:
    """Look up :class:`OpInfo` by opcode number."""
    return _ops[code]


def by_name(mnemonic: str) -> OpInfo:
    """Look up :class:`OpInfo` by mnemonic (used by the IL assembler)."""
    return _by_name[mnemonic]


def mnemonic(code: int) -> str:
    return _ops[code].mnemonic


#: total number of defined opcodes (JIT lowering tables are sized from this)
COUNT = _next[0]

#: opcodes that unconditionally transfer control (end a basic block)
UNCONDITIONAL_FLOW = frozenset({BR, RET, THROW, RETHROW, LEAVE, ENDFINALLY, SWITCH})

#: opcodes that conditionally branch
CONDITIONAL_BRANCHES = frozenset({BRTRUE, BRFALSE, BEQ, BNE, BGE, BGT, BLE, BLT})

#: all opcodes with a branch-target operand
BRANCHES = frozenset({BR, LEAVE}) | CONDITIONAL_BRANCHES
