"""Programmatic CIL emission with label fix-up.

The :class:`MethodBuilder` is what the Kernel-C# code generator (and tests)
use to emit method bodies: it supports forward-referencing labels, local
allocation, and exception-region bracketing, then produces a finished
:class:`~repro.cil.metadata.MethodDef` with resolved branch targets and a
computed ``max_stack``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CilError
from . import opcodes as op
from .cts import CType
from .instructions import CATCH, FINALLY, ExceptionRegion, Instruction
from .metadata import LocalVar, MethodDef


class Label:
    """A branch target; position is patched when marked."""

    __slots__ = ("name", "position")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.position: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Label {self.name or id(self)} @{self.position}>"


class MethodBuilder:
    """Builds one method body instruction by instruction."""

    def __init__(self, method: MethodDef) -> None:
        self.method = method
        self._instructions: List[Instruction] = []
        self._fixups: List[Tuple[int, Label]] = []
        self._switch_fixups: List[Tuple[int, List[Label]]] = []
        self._local_index: Dict[str, int] = {
            v.name: i for i, v in enumerate(method.locals)
        }
        self._regions: List[ExceptionRegion] = []
        #: positions where labels were marked (targets of future jumps);
        #: code generators must not treat such positions as unreachable
        self._marked_positions: set = set()
        self.current_line = 0

    # -- locals ------------------------------------------------------------

    def declare_local(self, name: str, var_type: CType) -> int:
        """Declare a named local, returning its index. Anonymous temps pass
        a unique generated name."""
        if name in self._local_index:
            raise CilError(f"duplicate local {name!r} in {self.method.name}")
        index = len(self.method.locals)
        self.method.locals.append(LocalVar(name, var_type))
        self._local_index[name] = index
        return index

    def local_index(self, name: str) -> int:
        try:
            return self._local_index[name]
        except KeyError:
            raise CilError(f"unknown local {name!r} in {self.method.name}") from None

    # -- emission ------------------------------------------------------------

    def emit(self, opcode: int, operand: object = None) -> Instruction:
        instr = Instruction(opcode, operand, line=self.current_line)
        self._instructions.append(instr)
        return instr

    def new_label(self, name: str = "") -> Label:
        return Label(name)

    def mark_label(self, label: Label) -> None:
        if label.position is not None:
            raise CilError(f"label {label.name!r} marked twice")
        label.position = len(self._instructions)
        self._marked_positions.add(label.position)

    def emit_branch(self, opcode: int, label: Label) -> Instruction:
        if opcode not in op.BRANCHES:
            raise CilError(f"{op.mnemonic(opcode)} is not a branch opcode")
        instr = self.emit(opcode, None)
        self._fixups.append((len(self._instructions) - 1, label))
        return instr

    def emit_switch(self, labels: List[Label]) -> Instruction:
        instr = self.emit(op.SWITCH, None)
        self._switch_fixups.append((len(self._instructions) - 1, list(labels)))
        return instr

    @property
    def position(self) -> int:
        return len(self._instructions)

    # -- exception regions ---------------------------------------------------

    def add_region(
        self,
        kind: str,
        try_start: int,
        try_end: int,
        handler_start: int,
        handler_end: int,
        catch_type: Optional[str] = None,
    ) -> ExceptionRegion:
        if kind not in (CATCH, FINALLY):
            raise CilError(f"bad region kind {kind!r}")
        if kind == CATCH and not catch_type:
            raise CilError("catch region requires a catch_type")
        region = ExceptionRegion(kind, try_start, try_end, handler_start, handler_end, catch_type)
        self._regions.append(region)
        return region

    # -- finish ----------------------------------------------------------------

    def build(self) -> MethodDef:
        """Resolve labels, compute max_stack, and return the finished method."""
        for index, label in self._fixups:
            if label.position is None:
                raise CilError(
                    f"unresolved label {label.name!r} in {self.method.name}"
                )
            self._instructions[index].operand = label.position
        for index, labels in self._switch_fixups:
            targets = []
            for label in labels:
                if label.position is None:
                    raise CilError(
                        f"unresolved switch label {label.name!r} in {self.method.name}"
                    )
                targets.append(label.position)
            self._instructions[index].operand = targets
        self.method.body = self._instructions
        self.method.regions = self._regions
        self.method.max_stack = _compute_max_stack(self.method)
        return self.method


def _stack_delta(method: MethodDef, instr: Instruction) -> Tuple[int, int]:
    """(pops, pushes) for one instruction, resolving dynamic effects."""
    i = op.info(instr.opcode)
    pops, pushes = i.pops, i.pushes
    if instr.opcode == op.RET:
        pops = 0 if method.return_type.name == "void" else 1
        pushes = 0
    elif instr.opcode in (op.CALL, op.CALLVIRT):
        ref = instr.operand
        pops = len(ref.param_types) + (0 if ref.is_static else 1)
        pushes = 0 if ref.return_type.name == "void" else 1
    elif instr.opcode == op.NEWOBJ:
        ref = instr.operand
        pops = len(ref.param_types)
        pushes = 1
    elif instr.opcode in (op.NEWARR_MD,):
        _elem, rank = instr.operand
        pops, pushes = rank, 1
    elif instr.opcode == op.LDELEM_MD:
        _elem, rank = instr.operand
        pops, pushes = rank + 1, 1
    elif instr.opcode == op.STELEM_MD:
        _elem, rank = instr.operand
        pops, pushes = rank + 2, 0
    assert pops is not None and pushes is not None
    return pops, pushes


def _compute_max_stack(method: MethodDef) -> int:
    """Worst-case evaluation stack depth via worklist dataflow.

    Exception handlers start with depth 1 (the exception object) for catch,
    0 for finally.
    """
    body = method.body
    if not body:
        return 0
    depth_at: Dict[int, int] = {0: 0}
    work: List[int] = [0]
    for region in method.regions:
        start_depth = 1 if region.kind == CATCH else 0
        if region.handler_start not in depth_at:
            depth_at[region.handler_start] = start_depth
            work.append(region.handler_start)
    max_depth = 0
    while work:
        index = work.pop()
        depth = depth_at[index]
        instr = body[index]
        pops, pushes = _stack_delta(method, instr)
        depth = depth - pops
        if depth < 0:
            raise CilError(
                f"stack underflow at {index}:{instr.mnemonic} in {method.full_name}"
            )
        depth += pushes
        if depth > max_depth:
            max_depth = depth
        code = instr.opcode
        succs: List[int] = []
        if code in (op.BR,):
            succs = [instr.operand]
        elif code == op.LEAVE:
            # leave clears the evaluation stack
            succs = [instr.operand]
            depth = 0
        elif code in op.CONDITIONAL_BRANCHES:
            succs = [instr.operand, index + 1]
        elif code == op.SWITCH:
            succs = list(instr.operand) + [index + 1]
        elif code in (op.RET, op.THROW, op.RETHROW, op.ENDFINALLY):
            succs = []
        else:
            succs = [index + 1]
        for s in succs:
            if s >= len(body):
                raise CilError(f"branch past end of {method.full_name}")
            prev = depth_at.get(s)
            if prev is None:
                depth_at[s] = depth
                work.append(s)
            elif prev != depth:
                raise CilError(
                    f"inconsistent stack depth at {s} in {method.full_name}: "
                    f"{prev} vs {depth}"
                )
    return max_depth
