"""Textual IL assembler — parses the disassembler's output format back into
an executable :class:`~repro.cil.metadata.Assembly`.

Together with :mod:`repro.cil.disassembler` this closes the loop on the
self-describing-image design rule: ``assemble(disassemble(asm))`` is an
equivalent assembly (verified by round-trip tests), and hand-written IL can
be fed straight to the execution engines — handy for JIT pass tests that
need instruction sequences csc-style codegen would never emit.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import AssembleError
from . import cts, opcodes as op
from .instructions import CATCH, FINALLY, ExceptionRegion, FieldRef, Instruction, MethodRef
from .metadata import Assembly, ClassDef, FieldDef, LocalVar, MethodDef

def _split_commas(text: str) -> List[str]:
    """Split on top-level commas (commas inside [..] belong to array ranks)."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (piece.strip() for piece in parts) if p]


_IL_LABEL = re.compile(r"^IL_([0-9a-fA-F]{4}):\s*(\S+)\s*(.*)$")
_METHOD_SIG = re.compile(
    r"^(?P<inst>instance\s+)?(?P<ret>\S+)\s+(?P<cls>[\w.$<>]+)::(?P<name>[\w.$<>]+)"
    r"\((?P<params>.*)\)$"
)


def _parse_type(text: str):
    text = text.strip()
    rank_suffixes: List[int] = []
    while text.endswith("]"):
        open_idx = text.rindex("[")
        inner = text[open_idx + 1 : -1]
        if inner.strip(",") != "":
            raise AssembleError(f"bad array suffix in type {text!r}")
        rank_suffixes.append(inner.count(",") + 1)
        text = text[:open_idx]
    base = cts.BY_NAME.get(text)
    if base is None:
        base = cts.named(text)
    for rank in reversed(rank_suffixes):
        base = cts.array_of(base, rank)
    return base


def _parse_method_ref(text: str) -> MethodRef:
    m = _METHOD_SIG.match(text.strip())
    if m is None:
        raise AssembleError(f"bad method signature {text!r}")
    params_text = m.group("params").strip()
    params: Tuple = ()
    if params_text:
        # parameter lists may carry names ("int32 x") or be bare types
        types = []
        for part in _split_commas(params_text):
            tokens = part.split()
            types.append(_parse_type(tokens[0]))
        params = tuple(types)
    return MethodRef(
        class_name=m.group("cls"),
        name=m.group("name"),
        param_types=params,
        return_type=_parse_type(m.group("ret")),
        is_static=m.group("inst") is None,
    )


def _parse_field_ref(text: str, is_static: bool) -> FieldRef:
    parts = text.strip().split(None, 1)
    if len(parts) != 2 or "::" not in parts[1]:
        raise AssembleError(f"bad field reference {text!r}")
    ftype = _parse_type(parts[0])
    cls, _, name = parts[1].partition("::")
    return FieldRef(cls, name, ftype, is_static=is_static)


def _parse_operand(info: op.OpInfo, text: str, opcode: int):
    text = text.strip()
    kind = info.operand
    if kind == "none":
        if text:
            raise AssembleError(f"{info.mnemonic}: unexpected operand {text!r}")
        return None
    if not text:
        raise AssembleError(f"{info.mnemonic}: missing operand")
    if kind in ("i4", "i8"):
        value = int(text, 0)
        if kind == "i4" and value >= 2**31:
            value -= 2**32
        if kind == "i8" and value >= 2**63:
            value -= 2**64
        return value
    if kind in ("r4", "r8"):
        return float(text)
    if kind == "str":
        if not (text.startswith('"') and text.endswith('"')):
            raise AssembleError(f"bad string literal {text!r}")
        return text[1:-1].replace('\\"', '"')
    if kind in ("local", "arg"):
        return int(text)
    if kind == "field":
        return _parse_field_ref(text, is_static=opcode in (op.LDSFLD, op.STSFLD))
    if kind == "method":
        return _parse_method_ref(text)
    if kind == "type":
        return _parse_type(text)
    if kind == "typerank":
        t = _parse_type(text)
        if not t.is_array:
            raise AssembleError(f"{info.mnemonic}: expected array type, got {text!r}")
        return (t.element, t.rank)
    if kind == "target":
        m = re.match(r"^IL_([0-9a-fA-F]{4})$", text)
        if m is None:
            raise AssembleError(f"bad branch target {text!r}")
        return int(m.group(1), 16)
    if kind == "switch":
        inner = text.strip("()")
        targets = []
        for piece in inner.split(","):
            piece = piece.strip()
            m = re.match(r"^IL_([0-9a-fA-F]{4})$", piece)
            if m is None:
                raise AssembleError(f"bad switch target {piece!r}")
            targets.append(int(m.group(1), 16))
        return targets
    raise AssembleError(f"unhandled operand kind {kind}")  # pragma: no cover


class Assembler:
    def __init__(self, source: str) -> None:
        self.lines = [line.rstrip() for line in source.splitlines()]
        self.pos = 0
        self.assembly: Optional[Assembly] = None
        self._entry: Optional[Tuple[str, str]] = None

    def error(self, message: str) -> AssembleError:
        return AssembleError(f"line {self.pos + 1}: {message}")

    def _next_significant(self) -> Optional[str]:
        while self.pos < len(self.lines):
            line = self.lines[self.pos].strip()
            if line and not line.startswith(";"):
                return line
            self.pos += 1
        return None

    def parse(self) -> Assembly:
        line = self._next_significant()
        if line is None or not line.startswith(".assembly"):
            raise self.error("expected .assembly header")
        self.assembly = Assembly(line.split(None, 1)[1].strip())
        self.pos += 1
        while True:
            line = self._next_significant()
            if line is None:
                break
            if line.startswith(".entrypoint"):
                target = line.split(None, 1)[1].strip()
                cls, _, name = target.partition("::")
                self._entry = (cls, name)
                self.pos += 1
            elif line.startswith((".class", ".struct")):
                self._parse_class(line)
            else:
                raise self.error(f"unexpected line {line!r}")
        if self._entry is not None:
            self.assembly.set_entry_point(*self._entry)
        return self.assembly

    def _parse_class(self, header: str) -> None:
        is_struct = header.startswith(".struct")
        rest = header.split(None, 1)[1]
        base = None
        if " extends " in rest:
            name, base = (s.strip() for s in rest.split(" extends ", 1))
        else:
            name = rest.strip()
        cls = ClassDef(name=name, base_name=base, is_value_type=is_struct)
        self.assembly.add_class(cls)
        self.pos += 1
        if (self._next_significant() or "") != "{":
            raise self.error("expected '{' after class header")
        self.pos += 1
        while True:
            line = self._next_significant()
            if line is None:
                raise self.error("unterminated class body")
            if line == "}":
                self.pos += 1
                return
            if line.startswith(".field"):
                self._parse_field(cls, line)
            elif line.startswith(".method"):
                self._parse_method(cls, line)
            else:
                raise self.error(f"unexpected class member {line!r}")

    def _parse_field(self, cls: ClassDef, line: str) -> None:
        rest = line[len(".field"):].strip()
        is_static = rest.startswith(".static")
        if is_static:
            rest = rest[len(".static"):].strip()
        parts = rest.split()
        if len(parts) != 2:
            raise self.error(f"bad field declaration {line!r}")
        cls.add_field(FieldDef(parts[1], _parse_type(parts[0]), is_static))
        self.pos += 1

    def _parse_method(self, cls: ClassDef, header: str) -> None:
        rest = header[len(".method"):].strip()
        is_static = False
        is_virtual = False
        is_override = False
        while True:
            if rest.startswith("static "):
                is_static = True
                rest = rest[7:]
            elif rest.startswith("virtual "):
                is_virtual = True
                rest = rest[8:]
            elif rest.startswith("override "):
                is_override = True
                rest = rest[9:]
            else:
                break
        sig = _parse_method_ref(("" if is_static else "instance ") + rest)
        if sig.class_name != cls.name:
            raise self.error(
                f"method declared on {sig.class_name!r} inside class {cls.name!r}"
            )
        # recover declared parameter names ("int32 x, float64 y")
        params_text = rest[rest.index("(") + 1 : rest.rindex(")")].strip()
        param_names: List[str] = []
        for i, part in enumerate(_split_commas(params_text)):
            tokens = part.split()
            param_names.append(tokens[1] if len(tokens) > 1 else f"a{i}")
        method = MethodDef(
            name=sig.name,
            param_types=list(sig.param_types),
            param_names=param_names,
            return_type=sig.return_type,
            is_static=is_static,
            is_virtual=is_virtual,
            is_override=is_override,
            is_ctor=sig.name == ".ctor",
        )
        self.pos += 1
        if (self._next_significant() or "") != "{":
            raise self.error("expected '{' after method header")
        self.pos += 1

        body: List[Instruction] = []
        regions: List[ExceptionRegion] = []
        while True:
            line = self._next_significant()
            if line is None:
                raise self.error("unterminated method body")
            if line == "}":
                self.pos += 1
                break
            if line.startswith(".maxstack"):
                method.max_stack = int(line.split()[1])
            elif line.startswith(".locals"):
                inner = line[len(".locals"):].strip().strip("()")
                for decl in _split_commas(inner):
                    t, _, n = decl.partition(" ")
                    method.locals.append(LocalVar(n.strip(), _parse_type(t)))
            elif line.startswith(".try"):
                regions.append(self._parse_region(line))
            else:
                m = _IL_LABEL.match(line)
                if m is None:
                    raise self.error(f"bad instruction line {line!r}")
                index = int(m.group(1), 16)
                if index != len(body):
                    raise self.error(
                        f"instruction offset IL_{index:04x} out of order "
                        f"(expected IL_{len(body):04x})"
                    )
                mnemonic = m.group(2)
                try:
                    info = op.by_name(mnemonic)
                except KeyError:
                    raise self.error(f"unknown opcode {mnemonic!r}") from None
                body.append(
                    Instruction(info.code, _parse_operand(info, m.group(3), info.code))
                )
            self.pos += 1
        method.body = body
        method.regions = regions
        cls.add_method(method)

    _REGION = re.compile(
        r"^\.try IL_([0-9a-fA-F]{4})\.\.IL_([0-9a-fA-F]{4}) (catch|finally)\s*(\S*)?"
        r"\s*handler IL_([0-9a-fA-F]{4})\.\.IL_([0-9a-fA-F]{4})$"
    )

    def _parse_region(self, line: str) -> ExceptionRegion:
        m = self._REGION.match(line.strip())
        if m is None:
            raise self.error(f"bad .try directive {line!r}")
        kind = CATCH if m.group(3) == "catch" else FINALLY
        return ExceptionRegion(
            kind=kind,
            try_start=int(m.group(1), 16),
            try_end=int(m.group(2), 16),
            handler_start=int(m.group(5), 16),
            handler_end=int(m.group(6), 16),
            catch_type=m.group(4) or None if kind == CATCH else None,
        )


def assemble(source: str) -> Assembly:
    """Assemble textual IL (the disassembler's format) into an Assembly."""
    return Assembler(source).parse()
