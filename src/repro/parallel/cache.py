"""Persistent on-disk compile cache: content hash -> serialized Assembly.

The paper's methodology compiles each benchmark once and runs the identical
image on every runtime, so across harness invocations (CI jobs, repeated
``repro-bench run``, fuzz-corpus replays) the compiler is pure function of
its source text.  This cache makes that purity pay: a cache entry is keyed
by SHA-256 over (compiler version, assembly name, source), the value is the
:meth:`~repro.cil.metadata.Assembly.to_bytes` payload, and a warm cache
eliminates every ``compile_source`` call of a repeat run.

Invalidation rule: the key embeds
:data:`repro.lang.compiler.COMPILER_VERSION` and the assembly wire-format
tag, so bumping either orphans old entries (they are simply never hit
again); there is no in-place mutation.  Writes are atomic
(tempfile + ``os.replace``), so concurrent pool workers may race on the
same key and the loser's write harmlessly replaces the identical payload.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Optional

from ..cil.metadata import ASSEMBLY_WIRE_FORMAT, Assembly

#: environment override for the cache location (CLI flags still win)
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: default cache root, relative to the current working directory
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


class CompileCache:
    """Content-addressed store of compiled assemblies under ``root``.

    ``hits``/``misses`` count this instance's lookups (each pool worker
    holds its own instance over the shared directory; the pool layer sums
    worker counts into the parent's metrics registry).
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0

    # ----------------------------------------------------------------- keys

    def key_for(self, source: str, assembly_name: str) -> str:
        from ..lang.compiler import COMPILER_VERSION

        digest = hashlib.sha256()
        digest.update(COMPILER_VERSION.encode())
        digest.update(ASSEMBLY_WIRE_FORMAT)
        digest.update(assembly_name.encode())
        digest.update(b"\x00")
        digest.update(source.encode())
        return digest.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, "asm", key[:2], key + ".bin")

    # -------------------------------------------------------------- load/store

    def load(self, key: str) -> Optional[Assembly]:
        """The cached assembly for ``key``, or None.  A corrupt or
        wrong-format entry reads as a miss (and is overwritten by the next
        store), never as an error."""
        try:
            with open(self._path(key), "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        try:
            return Assembly.from_bytes(data)
        except Exception:
            return None

    def store(self, key: str, assembly: Assembly) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(assembly.to_bytes())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------- api

    def get_or_compile(self, source: str, assembly_name: str = "program", **kwargs) -> Assembly:
        """Return the cached assembly for ``source``, compiling (and
        persisting) on a miss.  ``kwargs`` pass through to
        :func:`repro.lang.compile_source` on the compile path only — callers
        using non-default compile options should not share a cache directory
        with default-option callers."""
        from ..lang import compile_source

        key = self.key_for(source, assembly_name)
        assembly = self.load(key)
        if assembly is not None:
            self.hits += 1
            return assembly
        self.misses += 1
        assembly = compile_source(source, assembly_name=assembly_name, **kwargs)
        self.store(key, assembly)
        return assembly

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "root": self.root}
