"""Persistent on-disk compile cache: content hash -> serialized Assembly.

The paper's methodology compiles each benchmark once and runs the identical
image on every runtime, so across harness invocations (CI jobs, repeated
``repro-bench run``, fuzz-corpus replays) the compiler is pure function of
its source text.  This cache makes that purity pay: a cache entry is keyed
by SHA-256 over (compiler version, assembly name, source), the value is the
:meth:`~repro.cil.metadata.Assembly.to_bytes` payload, and a warm cache
eliminates every ``compile_source`` call of a repeat run.

Invalidation rule: the key embeds
:data:`repro.lang.compiler.COMPILER_VERSION` and the assembly wire-format
tag, so bumping either orphans old entries (they are simply never hit
again); there is no in-place mutation.  Writes are atomic
(tempfile + ``os.replace``), so concurrent pool workers may race on the
same key and the loser's write harmlessly replaces the identical payload.

Crash consistency: a worker killed mid-:meth:`~CompileCache.store` can
leave at most an orphaned ``*.tmp`` file — never a partial entry at a
final path, because the final name only ever appears via ``os.replace`` of
a fully-written temp file.  Orphans are invisible to :meth:`load` (final
paths end in ``.bin``) and are reaped by :meth:`sweep`.  A truncated or
corrupted entry that does reach a final path (e.g. torn storage) reads as
a miss and is repaired by the next store.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Optional, Sequence, Tuple

from ..cil.metadata import ASSEMBLY_WIRE_FORMAT, Assembly

#: environment override for the cache location (CLI flags still win)
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: default cache root, relative to the current working directory
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


class CompileCache:
    """Content-addressed store of compiled assemblies under ``root``.

    ``hits``/``misses`` count this instance's lookups (each pool worker
    holds its own instance over the shared directory; the pool layer sums
    worker counts into the parent's metrics registry).

    ``corrupt_loads`` is the fault-injection hook: a sorted tuple of
    1-based load ordinals whose read bytes are truncated to half before
    deserialization, simulating a torn entry.  Each such load must count
    as a miss (``corrupted`` tracks how many did) — the degradation
    contract under corruption is recompile, never crash.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        corrupt_loads: Sequence[int] = (),
    ) -> None:
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.corrupted = 0
        self.corrupt_loads: Tuple[int, ...] = tuple(corrupt_loads)
        self._loads = 0

    # ----------------------------------------------------------------- keys

    def key_for(self, source: str, assembly_name: str) -> str:
        from ..lang.compiler import COMPILER_VERSION

        digest = hashlib.sha256()
        digest.update(COMPILER_VERSION.encode())
        digest.update(ASSEMBLY_WIRE_FORMAT)
        digest.update(assembly_name.encode())
        digest.update(b"\x00")
        digest.update(source.encode())
        return digest.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, "asm", key[:2], key + ".bin")

    # -------------------------------------------------------------- load/store

    def load(self, key: str) -> Optional[Assembly]:
        """The cached assembly for ``key``, or None.  A corrupt or
        wrong-format entry reads as a miss (and is overwritten by the next
        store), never as an error."""
        try:
            with open(self._path(key), "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        self._loads += 1
        if self._loads in self.corrupt_loads:
            data = data[: len(data) // 2]
        try:
            return Assembly.from_bytes(data)
        except Exception:
            self.corrupted += 1
            return None

    def store(self, key: str, assembly: Assembly) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(assembly.to_bytes())
                os.replace(tmp, path)
            except OSError:
                pass
        finally:
            # os.replace consumed tmp on success; anything left behind is
            # a partial write from the failure path above.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def sweep(self) -> int:
        """Remove orphaned ``*.tmp`` files left by killed writers; returns
        how many were reaped.  Safe to run concurrently with writers: a
        live temp file that disappears under a sweeping process was about
        to be replaced anyway, and ``store`` tolerates the lost unlink."""
        reaped = 0
        asm_root = os.path.join(self.root, "asm")
        for dirpath, _dirnames, filenames in os.walk(asm_root):
            for name in filenames:
                if name.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        reaped += 1
                    except OSError:
                        pass
        return reaped

    # ------------------------------------------------------------------- api

    def get_or_compile(self, source: str, assembly_name: str = "program", **kwargs) -> Assembly:
        """Return the cached assembly for ``source``, compiling (and
        persisting) on a miss.  ``kwargs`` pass through to
        :func:`repro.lang.compile_source` on the compile path only — callers
        using non-default compile options should not share a cache directory
        with default-option callers."""
        from ..lang import compile_source

        key = self.key_for(source, assembly_name)
        assembly = self.load(key)
        if assembly is not None:
            self.hits += 1
            return assembly
        self.misses += 1
        assembly = compile_source(source, assembly_name=assembly_name, **kwargs)
        self.store(key, assembly)
        return assembly

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupted": self.corrupted,
            "root": self.root,
        }
