"""Shared execution-plumbing argparse wiring.

``hpcnet run``, ``repro-bench run``, ``repro-chaos`` and ``repro-client
submit`` all take the same operational options: ``--jobs``,
``--cache-dir`` / ``--no-compile-cache``, ``--dispatch`` and the
``--fault-*`` plan flags.  :func:`add_execution_args` attaches them once
and :func:`execution_from_args` folds the parsed namespace into an
:class:`ExecutionConfig`, so the four CLIs cannot drift on defaults,
help text or destination names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cache import CompileCache, default_cache_dir
from .pool import add_jobs_argument


@dataclass
class ExecutionConfig:
    """One CLI invocation's execution plumbing, parsed and resolved."""

    jobs: Optional[object] = None
    #: service-level concurrency (``repro-serve --workers``): how many
    #: jobs the daemon executes at once, orthogonal to ``jobs`` (the
    #: per-collection cell fan-out)
    workers: Optional[object] = None
    #: admission bound on queued jobs (``repro-serve --max-queue N|auto``;
    #: "auto" = 4x workers, None = unbounded) — over-capacity submissions
    #: are shed with a structured 429 + Retry-After
    max_queue: Optional[object] = None
    cache_dir: Optional[str] = None
    use_compile_cache: bool = True
    dispatch: Optional[str] = None
    plan: Optional[object] = None
    cell_timeout: Optional[float] = None

    @property
    def cache(self) -> Optional[CompileCache]:
        """The compile cache this config selects (None when disabled)."""
        if not self.use_compile_cache:
            return None
        return CompileCache(self.cache_dir)

    def as_request(self) -> dict:
        """The JSON shape the experiment service accepts for a job.

        Fault plans are deliberately not serialized — the service rejects
        perturbed submissions (memoized results must stay fault-free), so
        an armed plan here is a caller error surfaced before any HTTP.
        """
        if self.plan is not None:
            raise ValueError("fault plans cannot be submitted to the service")
        return {"jobs": self.jobs, "dispatch": self.dispatch}


def add_execution_args(parser, *, fault_prefix: str = "fault",
                       jobs_default=None, include_faults: bool = True,
                       include_workers: bool = False) -> None:
    """Attach the shared execution options to an argparse parser.

    ``fault_prefix`` follows the :func:`repro.faults.cli.add_fault_arguments`
    convention: ``"fault"`` yields ``--fault-seed`` etc. (hpcnet /
    repro-bench), ``""`` yields bare ``--seed`` (repro-chaos).  Pass
    ``include_faults=False`` for surfaces that cannot accept a plan at
    all (the service client).  ``include_workers=True`` adds the daemon's
    ``--workers N|auto`` concurrency flag (repro-serve only).
    """
    from ..vm.dispatch import DISPATCH_MODES

    add_jobs_argument(parser, default=jobs_default)
    if include_workers:
        parser.add_argument(
            "--workers", default=None, metavar="N",
            help="concurrent job executions (int or 'auto' for one per "
                 "CPU; default: 1).  Each job runs in its own isolated "
                 "subprocess; identical in-flight submissions coalesce "
                 "onto one execution.",
        )
        parser.add_argument(
            "--max-queue", default=None, metavar="N",
            help="admission bound on queued jobs (int, or 'auto' for 4x "
                 "workers; default: unbounded).  Over-capacity "
                 "submissions get a structured 429 with a deterministic "
                 "Retry-After instead of growing the queue without "
                 "bound.",
        )
    parser.add_argument("--cache-dir", default=default_cache_dir(), metavar="DIR",
                        help="persistent compile cache location "
                             "(default: $REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--no-compile-cache", action="store_true",
                        help="compile from scratch; do not read or write the cache")
    parser.add_argument("--dispatch", default=None, choices=DISPATCH_MODES,
                        help="VM dispatch engine (default: classic, or "
                             "$REPRO_DISPATCH); engines are bit-identical in "
                             "simulated cycles — only host wall clock differs")
    if include_faults:
        from ..faults.cli import add_fault_arguments

        add_fault_arguments(parser, prefix=fault_prefix)


def execution_from_args(args) -> ExecutionConfig:
    """Fold an :func:`add_execution_args` namespace into an ExecutionConfig."""
    plan = None
    cell_timeout = getattr(args, "cell_timeout", None)
    if hasattr(args, "fault_seed"):
        from ..faults.cli import plan_from_args

        plan = plan_from_args(args)
    return ExecutionConfig(
        jobs=getattr(args, "jobs", None),
        workers=getattr(args, "workers", None),
        max_queue=getattr(args, "max_queue", None),
        cache_dir=getattr(args, "cache_dir", None),
        use_compile_cache=not getattr(args, "no_compile_cache", False),
        dispatch=getattr(args, "dispatch", None),
        plan=plan,
        cell_timeout=cell_timeout,
    )
