"""``repro.parallel`` — experiment-matrix fan-out and the compile cache.

Two cooperating pieces:

* :mod:`repro.parallel.pool` shards an independent-cell experiment matrix
  across worker processes with static, index-keyed sharding, so parallel
  output is bit-identical to serial output (everything measured lives on
  the simulated clock).
* :mod:`repro.parallel.cache` is the persistent content-addressed compile
  cache (``.repro-cache/`` by default) that lets every worker — and every
  repeat harness/CI invocation — load the shared CIL image instead of
  recompiling it.
"""

from .cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, CompileCache, default_cache_dir
from .execargs import ExecutionConfig, add_execution_args, execution_from_args
from .pool import PoolError, PoolReport, add_jobs_argument, resolve_jobs, run_cells

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "CompileCache",
    "default_cache_dir",
    "ExecutionConfig",
    "add_execution_args",
    "execution_from_args",
    "PoolError",
    "PoolReport",
    "add_jobs_argument",
    "resolve_jobs",
    "run_cells",
]
