"""Deterministic process-pool fan-out over independent experiment cells.

The experiment matrices this repo runs — (benchmark x runtime profile) in
the harness and ``repro-bench``, (program x profile x pass-ablation) in the
differential fuzzer — are embarrassingly parallel by construction: every
cell compiles-or-loads the same immutable CIL image and executes on its own
:class:`~repro.vm.machine.Machine` on the *simulated* clock.  Wall-clock
parallelism therefore cannot perturb any measured number, which lets this
layer promise something stronger than most pools: **the merged output of a
parallel run is bit-identical to the serial run**.

Two design rules make that promise enforceable rather than probabilistic:

* *Static sharding.*  Cell ``i`` always goes to worker ``i % jobs``; there
  is no work-stealing queue whose scheduling could reorder anything.
* *Indexed merge.*  Workers return ``(index, payload)`` pairs and the
  parent reassembles strictly by index, so arrival order is irrelevant.

Workers are plain ``multiprocessing`` processes (fork where available,
spawn otherwise); payloads are picklable result records (``ProfileRun``,
divergence lists), never live machines.  Per-cell wall clock, worker
utilisation, and compile-cache hit/miss counts are folded into a
:class:`~repro.metrics.MetricsRegistry` — wall time is *operational*
telemetry about the pool and never enters a measured artifact.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError


class PoolError(ReproError):
    """A pool worker died with an unexpected host-side error."""


# ------------------------------------------------------------------ job count


def resolve_jobs(jobs) -> int:
    """Normalize a ``--jobs`` value to a worker count (>= 1).

    ``None``/``0``/``1`` mean serial; ``"auto"`` (or any negative count)
    means one worker per CPU; anything else must be a positive int.
    """
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return max(1, multiprocessing.cpu_count())
        try:
            jobs = int(jobs)
        except ValueError:
            raise ValueError(f"bad jobs value {jobs!r}; expected an int or 'auto'")
    if jobs < 0:
        return max(1, multiprocessing.cpu_count())
    return max(1, jobs)


def add_jobs_argument(parser, default=None) -> None:
    """Attach the shared ``--jobs N|auto`` option to an argparse parser."""
    parser.add_argument(
        "--jobs",
        default=default,
        metavar="N",
        help="worker processes for the experiment matrix: an int, or 'auto' "
        "for one per CPU (default: serial; output is bit-identical either way)",
    )


# ------------------------------------------------------------------- reports


@dataclass
class PoolReport:
    """Operational summary of one fan-out (never part of measured output)."""

    cells: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    worker_pids: Tuple[int, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    #: per-cell wall seconds, in cell-index order
    cell_wall: List[float] = field(default_factory=list)

    @property
    def workers_used(self) -> int:
        return len(set(self.worker_pids))

    @property
    def cells_per_sec(self) -> float:
        return self.cells / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def record(self, registry) -> None:
        """Fold the report into a :class:`repro.metrics.MetricsRegistry`."""
        registry.counter("parallel.cells").add(self.cells)
        registry.counter("parallel.cache.hits").add(self.cache_hits)
        registry.counter("parallel.cache.misses").add(self.cache_misses)
        registry.gauge("parallel.jobs").set(self.jobs)
        registry.gauge("parallel.workers").set(self.workers_used)
        hist = registry.histogram("parallel.cell_wall_us")
        for seconds in self.cell_wall:
            hist.observe(int(seconds * 1e6))

    def summary(self) -> str:
        line = (
            f"{self.cells} cells in {self.wall_seconds:.2f}s "
            f"({self.cells_per_sec:.1f} cells/sec, jobs={self.jobs}, "
            f"workers={self.workers_used}"
        )
        if self.cache_hits or self.cache_misses:
            line += f", cache {self.cache_hits} hits / {self.cache_misses} misses"
        return line + ")"


# ------------------------------------------------------------- worker bodies
#
# One module-level function per cell kind so the pool works under the spawn
# start method too (workers re-import this module and unpickle plain data).


def _make_state(spec: dict) -> dict:
    """Per-worker-process state, built once before its chunk runs."""
    from .cache import CompileCache

    state: dict = {}
    if spec.get("cache_dir"):
        state["cache"] = CompileCache(spec["cache_dir"])
    else:
        state["cache"] = None
    if spec["kind"] == "harness":
        from ..harness.runner import Runner

        state["runner"] = Runner(
            profiles=[],
            clock_hz=spec.get("clock_hz"),
            quantum=spec.get("quantum", 50_000),
            disabled_passes=spec.get("disabled_passes", ()),
            compile_cache=state["cache"],
        )
    elif spec["kind"] == "fuzz":
        from ..runtimes import get_profile
        from ..fuzz.oracle import AblationPoint

        state["matrix"] = [
            AblationPoint(get_profile(name), frozenset(disabled))
            for name, disabled in spec["matrix_spec"]
        ]
    else:
        raise PoolError(f"unknown cell kind {spec['kind']!r}")
    return state


def _run_cell(state: dict, spec: dict, cell) -> object:
    if spec["kind"] == "harness":
        from ..runtimes import get_profile

        bench, params, profile_name = cell
        return state["runner"].run_on(
            bench,
            get_profile(profile_name),
            params,
            metrics=True if spec.get("metrics") else None,
        )
    # fuzz: one generated (or replayed) program through the whole matrix
    from contextlib import nullcontext

    from ..fuzz.genprog import generate_program, program_seed
    from ..fuzz.oracle import run_program

    index = cell
    deadline = spec.get("deadline")
    if deadline is not None and time.monotonic() > deadline:
        return ("timeout", index)
    pseed = program_seed(spec["seed"], index)
    prog = generate_program(pseed, budget=spec["budget"])
    inject = spec.get("inject_bug")
    if inject:
        from ..fuzz.oracle import inject_pass_bug

        ctx = inject_pass_bug(inject)
    else:
        ctx = nullcontext()
    try:
        with ctx:
            divergences = run_program(
                prog.source,
                state["matrix"],
                assembly_name=f"fuzz{index}",
                cache=state["cache"],
            )
    except ReproError as exc:
        return ("compile_failure", pseed, f"{type(exc).__name__}: {exc}")
    return ("result", pseed, prog.source, divergences)


def _worker_main(spec: dict, chunk: Sequence[Tuple[int, object]], queue) -> None:
    try:
        state = _make_state(spec)
        results = []
        for index, cell in chunk:
            t0 = time.perf_counter()
            payload = _run_cell(state, spec, cell)
            results.append((index, payload, time.perf_counter() - t0))
        cache = state.get("cache")
        hits, misses = (cache.hits, cache.misses) if cache else (0, 0)
        queue.put(("ok", os.getpid(), results, hits, misses))
    except BaseException:
        queue.put(("error", os.getpid(), traceback.format_exc()))


# ----------------------------------------------------------------- the pool


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_cells(
    spec: dict,
    cells: Sequence[object],
    jobs=None,
    registry=None,
) -> Tuple[List[object], PoolReport]:
    """Run every cell and return ``(payloads_in_cell_order, report)``.

    ``spec`` describes the cell kind plus its immutable per-run
    configuration (everything picklable); see :func:`_run_cell`.  With a
    resolved job count of 1 the cells run in-process through the *same*
    code path, so serial-vs-parallel comparisons always compare like with
    like.
    """
    njobs = resolve_jobs(jobs)
    started = time.perf_counter()
    indexed = list(enumerate(cells))
    outcomes: Dict[int, Tuple[object, float]] = {}
    report = PoolReport(cells=len(indexed), jobs=njobs)

    if njobs <= 1 or len(indexed) <= 1:
        state = _make_state(spec)
        for index, cell in indexed:
            t0 = time.perf_counter()
            payload = _run_cell(state, spec, cell)
            outcomes[index] = (payload, time.perf_counter() - t0)
        cache = state.get("cache")
        if cache is not None:
            report.cache_hits, report.cache_misses = cache.hits, cache.misses
        report.worker_pids = (os.getpid(),)
    else:
        ctx = _pool_context()
        queue = ctx.SimpleQueue()
        chunks = [indexed[w::njobs] for w in range(njobs)]
        procs = [
            ctx.Process(target=_worker_main, args=(spec, chunk, queue), daemon=True)
            for chunk in chunks
            if chunk
        ]
        for proc in procs:
            proc.start()
        pids: List[int] = []
        failures: List[str] = []
        for _ in procs:
            message = queue.get()
            if message[0] == "error":
                failures.append(f"worker {message[1]}:\n{message[2]}")
                continue
            _, pid, results, hits, misses = message
            pids.append(pid)
            report.cache_hits += hits
            report.cache_misses += misses
            for index, payload, wall in results:
                outcomes[index] = (payload, wall)
        for proc in procs:
            proc.join()
        if failures:
            raise PoolError(
                f"{len(failures)} pool worker(s) failed:\n" + "\n".join(failures)
            )
        report.worker_pids = tuple(pids)

    report.wall_seconds = time.perf_counter() - started
    ordered = [outcomes[index] for index, _ in indexed]
    report.cell_wall = [wall for _, wall in ordered]
    if registry is not None:
        report.record(registry)
    return [payload for payload, _ in ordered], report
