"""Deterministic, fault-resilient process-pool fan-out over experiment cells.

The experiment matrices this repo runs — (benchmark x runtime profile) in
the harness and ``repro-bench``, (program x profile x pass-ablation) in the
differential fuzzer — are embarrassingly parallel by construction: every
cell compiles-or-loads the same immutable CIL image and executes on its own
:class:`~repro.vm.machine.Machine` on the *simulated* clock.  Wall-clock
parallelism therefore cannot perturb any measured number, which lets this
layer promise something stronger than most pools: **the merged output of a
parallel run is bit-identical to the serial run**.

Three design rules make that promise enforceable rather than probabilistic:

* *Static sharding.*  Each dispatch round sends cell ``i`` of the round's
  pending list to worker ``i % jobs``; there is no work-stealing queue
  whose scheduling could reorder anything.
* *Indexed merge.*  Workers stream ``(index, payload)`` pairs and the
  parent reassembles strictly by index, so arrival order is irrelevant.
* *Plan-derived outcomes.*  Under a :class:`~repro.faults.FaultPlan`,
  which attempts fail, how many retries a cell gets, and whether it ends
  quarantined are pure functions of ``(plan seed, cell index)`` — never of
  observed pids, arrival order, or wall clock — so failure annotations are
  byte-identical at any ``--jobs`` count.

Resilience contract: a cell-level :class:`~repro.errors.ReproError` (guest
exception, injected OOM, cycle-watchdog timeout, compile failure) comes
back as a structured :class:`~repro.faults.CellFailure` payload in the
merged result list, never as a raised exception.  A worker that dies or
hangs forfeits only its *unreported* cells: the first of them is charged
one retry attempt (it is the cell the worker was executing — everything
before it was already streamed), the rest requeue penalty-free, and a cell
whose attempts exceed the retry budget is quarantined.  Only host-side
bugs (a worker body raising a non-Repro exception) still raise
:class:`PoolError`.

Workers are plain ``multiprocessing`` processes (fork where available,
spawn otherwise); payloads are picklable result records (``ProfileRun``,
``CellFailure``, divergence lists), never live machines.  Per-cell wall
clock, worker utilisation, and compile-cache hit/miss counts are folded
into a :class:`~repro.metrics.MetricsRegistry` — wall time is
*operational* telemetry about the pool and never enters a measured
artifact.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..faults.report import CellFailure
from ..trace import NULL_CONTEXT

#: retry budget when no FaultPlan supplies one (real worker deaths are
#: still retried and quarantined without any injection armed)
DEFAULT_MAX_RETRIES = 2

#: silence watchdog (seconds without any worker message before alive,
#: unfinished workers are presumed hung) when a plan is active but the
#: caller set no explicit cell timeout
DEFAULT_CELL_TIMEOUT = 20.0

#: parent poll interval while draining the worker queue
_POLL_SECONDS = 0.25


class PoolError(ReproError):
    """A pool worker died with an unexpected host-side error."""


# ------------------------------------------------------------------ job count


def resolve_jobs(jobs) -> int:
    """Normalize a ``--jobs`` value to a worker count (>= 1).

    ``None``/``0``/``1`` mean serial; ``"auto"`` (or any negative count)
    means one worker per CPU; anything else must be a positive int.
    """
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return max(1, multiprocessing.cpu_count())
        try:
            jobs = int(jobs)
        except ValueError:
            raise ValueError(f"bad jobs value {jobs!r}; expected an int or 'auto'")
    if jobs < 0:
        return max(1, multiprocessing.cpu_count())
    return max(1, jobs)


def add_jobs_argument(parser, default=None) -> None:
    """Attach the shared ``--jobs N|auto`` option to an argparse parser."""
    parser.add_argument(
        "--jobs",
        default=default,
        metavar="N",
        help="worker processes for the experiment matrix: an int, or 'auto' "
        "for one per CPU (default: serial; output is bit-identical either way)",
    )


# ------------------------------------------------------------------- reports


@dataclass
class PoolReport:
    """Operational summary of one fan-out (never part of measured output)."""

    cells: int = 0
    jobs: int = 1
    #: cells satisfied from a caller-supplied memo (experiment store hits);
    #: they execute nothing and charge 0.0 wall
    memoized: int = 0
    wall_seconds: float = 0.0
    worker_pids: Tuple[int, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupted: int = 0
    #: per-cell wall seconds, in cell-index order
    cell_wall: List[float] = field(default_factory=list)
    #: plan-derived worker-fault accounting (identical serial/parallel)
    worker_faults: int = 0
    retries: int = 0
    quarantined: int = 0
    #: observed (not plan-derived) worker deaths/kills; operational only
    crashes_observed: int = 0
    hangs_observed: int = 0

    @property
    def workers_used(self) -> int:
        return len(set(self.worker_pids))

    @property
    def cells_per_sec(self) -> float:
        return self.cells / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def record(self, registry) -> None:
        """Fold the report into a :class:`repro.metrics.MetricsRegistry`.

        The ``faults.*`` counters are only touched when nonzero so a run
        with no plan (and no real worker death) produces a registry
        snapshot bit-identical to one taken before this layer existed.
        """
        registry.counter("parallel.cells").add(self.cells)
        registry.counter("parallel.cache.hits").add(self.cache_hits)
        registry.counter("parallel.cache.misses").add(self.cache_misses)
        if self.memoized:
            registry.counter("parallel.memoized").add(self.memoized)
        registry.gauge("parallel.jobs").set(self.jobs)
        registry.gauge("parallel.workers").set(self.workers_used)
        hist = registry.histogram("parallel.cell_wall_us")
        for seconds in self.cell_wall:
            hist.observe(int(seconds * 1e6))
        if self.worker_faults:
            registry.counter("faults.worker_faults").add(self.worker_faults)
        if self.retries:
            registry.counter("faults.worker_retries").add(self.retries)
        if self.quarantined:
            registry.counter("faults.quarantined").add(self.quarantined)
        if self.crashes_observed:
            registry.counter("faults.worker_crashes").add(self.crashes_observed)
        if self.hangs_observed:
            registry.counter("faults.worker_hangs").add(self.hangs_observed)
        if self.cache_corrupted:
            registry.counter("faults.cache_corrupt").add(self.cache_corrupted)

    def summary(self) -> str:
        line = (
            f"{self.cells} cells in {self.wall_seconds:.2f}s "
            f"({self.cells_per_sec:.1f} cells/sec, jobs={self.jobs}, "
            f"workers={self.workers_used}"
        )
        if self.memoized:
            line += f", {self.memoized} memoized"
        if self.cache_hits or self.cache_misses:
            line += f", cache {self.cache_hits} hits / {self.cache_misses} misses"
        if self.cache_corrupted:
            line += f" ({self.cache_corrupted} corrupt)"
        if self.worker_faults:
            line += (
                f", worker faults {self.worker_faults} "
                f"({self.retries} retries, {self.quarantined} quarantined)"
            )
        return line + ")"


# ------------------------------------------------------------- worker bodies
#
# One module-level function per cell kind so the pool works under the spawn
# start method too (workers re-import this module and unpickle plain data).


def _make_state(spec: dict) -> dict:
    """Per-worker-process state, built once before its chunk runs."""
    from .cache import CompileCache

    plan = spec.get("plan")
    state: dict = {}
    if spec.get("cache_dir"):
        corrupt = plan.cache_corrupt_loads() if plan is not None else ()
        state["cache"] = CompileCache(spec["cache_dir"], corrupt_loads=corrupt)
    else:
        state["cache"] = None
    if spec["kind"] == "harness":
        from ..harness.runner import Runner

        state["runner"] = Runner(
            profiles=[],
            clock_hz=spec.get("clock_hz"),
            quantum=spec.get("quantum", 50_000),
            disabled_passes=spec.get("disabled_passes", ()),
            compile_cache=state["cache"],
            dispatch=spec.get("dispatch"),
        )
    elif spec["kind"] == "fuzz":
        from ..runtimes import get_profile
        from ..fuzz.oracle import AblationPoint

        state["matrix"] = [
            AblationPoint(get_profile(name), frozenset(disabled))
            for name, disabled in spec["matrix_spec"]
        ]
    else:
        raise PoolError(f"unknown cell kind {spec['kind']!r}")
    return state


def _run_cell(state: dict, spec: dict, cell, index: int) -> object:
    """Run one cell; a :class:`ReproError` crossing this boundary becomes a
    structured :class:`CellFailure` payload (the containment contract)."""
    plan = spec.get("plan")
    if spec["kind"] == "harness":
        from ..runtimes import get_profile

        bench, params, profile_name = cell
        faults = plan.machine_faults(index) if plan is not None else None
        try:
            return state["runner"].run_on(
                bench,
                get_profile(profile_name),
                params,
                metrics=True if spec.get("metrics") else None,
                faults=faults,
            )
        except ReproError as exc:
            return CellFailure.from_exception(index, exc)
    # fuzz: one generated (or replayed) program through the whole matrix
    from contextlib import nullcontext

    from ..fuzz.genprog import generate_program, program_seed
    from ..fuzz.oracle import run_program

    deadline = spec.get("deadline")
    if deadline is not None and time.monotonic() > deadline:
        return CellFailure(
            index=index,
            status="deadline",
            error="time budget exhausted before cell ran",
        )
    pseed = program_seed(spec["seed"], index)
    prog = generate_program(pseed, budget=spec["budget"])
    inject = spec.get("inject_bug")
    if inject:
        from ..fuzz.oracle import inject_pass_bug

        ctx = inject_pass_bug(inject)
    else:
        ctx = nullcontext()
    try:
        with ctx:
            divergences = run_program(
                prog.source,
                state["matrix"],
                assembly_name=f"fuzz{index}",
                cache=state["cache"],
            )
    except ReproError as exc:
        return ("compile_failure", pseed, f"{type(exc).__name__}: {exc}")
    return ("result", pseed, prog.source, divergences)


def _apply_worker_fault(plan, index: int, attempt: int, queue) -> None:
    """Execute the plan's worker-level fault for ``(cell, attempt)``:
    hard-exit for ``worker_crash``, sleep forever for ``worker_hang`` (the
    parent's silence watchdog kills us).  No-op once ``attempt`` reaches
    the plan's fail count — that attempt succeeds."""
    fault = plan.worker_fault(index)
    if fault is None or attempt >= fault[1]:
        return
    if fault[0] == "worker_crash":
        # flush earlier cells' streamed results so the parent's penalty
        # lands on this cell, not a completed one whose message was still
        # buffered in the feeder thread
        queue.close()
        queue.join_thread()
        os._exit(70)
    while True:  # worker_hang
        time.sleep(3600)


def _worker_main(spec: dict, chunk: Sequence[Tuple[int, object, int]], queue) -> None:
    """Stream one ``("cell", pid, index, payload, wall, t0)`` message per
    cell, then ``("done", pid, hits, misses, corrupted)``.  Streaming
    (rather than batching the chunk) is what makes the parent's penalty
    rule sound: when this process dies, exactly the unreported cells are
    outstanding and the first of them is the one being executed.  ``t0``
    is the worker's ``time.monotonic()`` at cell start — comparable
    across processes on one host, so the parent can fold the cell into
    the submission's wall-clock trace as a span with a real start time.
    """
    try:
        state = _make_state(spec)
        plan = spec.get("plan")
        pid = os.getpid()
        for index, cell, attempt in chunk:
            if plan is not None:
                _apply_worker_fault(plan, index, attempt, queue)
            t0_mono = time.monotonic()
            t0 = time.perf_counter()
            payload = _run_cell(state, spec, cell, index)
            queue.put(
                ("cell", pid, index, payload, time.perf_counter() - t0, t0_mono)
            )
        cache = state.get("cache")
        if cache is not None:
            queue.put(("done", pid, cache.hits, cache.misses, cache.corrupted))
        else:
            queue.put(("done", pid, 0, 0, 0))
    except BaseException:
        queue.put(("error", os.getpid(), traceback.format_exc()))


# ----------------------------------------------------------------- the pool


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _quarantine_failure(index: int, attempts: int, max_retries: int, plan) -> CellFailure:
    """The structured outcome of a cell whose retry budget is spent.
    Built from plan-derived fields when the plan armed a fault here (so
    serial and parallel runs agree byte-for-byte); a quarantine with no
    armed fault keeps ``fault=""`` and therefore reads as UNATTRIBUTED."""
    record = plan.fault_record(index) if plan is not None else None
    if record is not None and record.outcome == "quarantined":
        return CellFailure(
            index=index,
            status="quarantined",
            error=(
                f"worker fault {record.site}: {record.fail_attempts} failed "
                f"attempts exhausted retry budget {max_retries}"
            ),
            fault=record.site,
            retries=record.retries,
            backoff_cycles=record.backoff_cycles,
        )
    return CellFailure(
        index=index,
        status="quarantined",
        error=(
            f"worker died {attempts} times on this cell; "
            f"retry budget {max_retries} exhausted"
        ),
        retries=max_retries,
    )


def _cell_label(spec: dict, cell, index: int) -> str:
    """Human-readable span name for one cell: ``cell:bench@profile`` for
    harness matrices, ``cell:<index>`` for fuzz programs."""
    if spec.get("kind") == "harness":
        try:
            bench, _params, profile_name = cell
            return f"cell:{bench}@{profile_name}"
        except (TypeError, ValueError):
            pass
    return f"cell:{index}"


def _run_serial(spec: dict, indexed, outcomes, report: PoolReport,
                trace=NULL_CONTEXT) -> None:
    """The jobs=1 path.  Worker-level faults are *simulated* from the plan
    (failed attempts are skipped, not executed) so the final outcome of
    every cell — recovered cells run once, quarantined cells never run —
    is identical to what the parallel retry machinery converges to."""
    state = _make_state(spec)
    plan = spec.get("plan")
    max_retries = plan.max_retries if plan is not None else DEFAULT_MAX_RETRIES
    for index, cell in indexed:
        record = plan.fault_record(index) if plan is not None else None
        if record is not None and record.outcome == "quarantined":
            outcomes[index] = (
                _quarantine_failure(index, record.fail_attempts, max_retries, plan),
                0.0,
            )
            trace.event(
                "cell.quarantined", index=index, cell=_cell_label(spec, cell, index),
            )
            continue
        t0_mono = time.monotonic()
        t0 = time.perf_counter()
        payload = _run_cell(state, spec, cell, index)
        wall = time.perf_counter() - t0
        outcomes[index] = (payload, wall)
        trace.record(
            _cell_label(spec, cell, index), t0=t0_mono, dur=wall,
            index=index, track="serial",
        )
    cache = state.get("cache")
    if cache is not None:
        report.cache_hits, report.cache_misses = cache.hits, cache.misses
        report.cache_corrupted = cache.corrupted
    report.worker_pids = (os.getpid(),)


def _run_parallel(spec: dict, indexed, njobs: int, outcomes, report: PoolReport,
                  trace=NULL_CONTEXT) -> None:
    """Dispatch rounds of workers until every cell has an outcome.

    Per round: shard the pending cells statically, stream results, and
    watch for worker death (process exited without ``done``) and hangs
    (no message from anyone for the silence timeout while unfinished
    workers are alive).  A dead/hung worker charges one retry attempt to
    the first unreported cell of its chunk — the cell it was executing —
    and requeues the rest penalty-free; cells over the retry budget are
    quarantined between rounds.  Every round either finishes cells or
    charges at least one attempt, so the loop terminates.
    """
    plan = spec.get("plan")
    max_retries = plan.max_retries if plan is not None else DEFAULT_MAX_RETRIES
    cell_timeout = spec.get("cell_timeout")
    if cell_timeout is None and plan is not None:
        cell_timeout = DEFAULT_CELL_TIMEOUT

    ctx = _pool_context()
    queue = ctx.Queue()
    attempts: Dict[int, int] = {index: 0 for index, _ in indexed}
    labels = {index: _cell_label(spec, cell, index) for index, cell in indexed}
    pids: List[int] = []
    host_errors: List[str] = []

    while True:
        pending = [(i, c) for i, c in indexed if i not in outcomes]
        for index, _cell in pending:
            if attempts[index] > max_retries:
                outcomes[index] = (
                    _quarantine_failure(index, attempts[index], max_retries, plan),
                    0.0,
                )
                trace.event(
                    "cell.quarantined", index=index, cell=labels[index],
                    attempts=attempts[index],
                )
        pending = [(i, c) for i, c in pending if i not in outcomes]
        if not pending or host_errors:
            break

        chunks = [
            [(index, cell, attempts[index]) for index, cell in pending[w::njobs]]
            for w in range(njobs)
        ]
        workers = []
        for chunk in chunks:
            if not chunk:
                continue
            proc = ctx.Process(
                target=_worker_main, args=(spec, chunk, queue), daemon=True
            )
            proc.start()
            workers.append(
                {"proc": proc, "chunk": chunk, "reported": set(), "done": False}
            )
        by_pid = {w["proc"].pid: w for w in workers}
        pids.extend(by_pid)
        last_message = time.monotonic()

        def penalize(worker) -> None:
            unreported = [
                index for index, _c, _a in worker["chunk"]
                if index not in worker["reported"]
            ]
            if unreported:
                attempts[unreported[0]] += 1
                trace.event(
                    "cell.retry", index=unreported[0],
                    cell=labels[unreported[0]],
                    attempt=attempts[unreported[0]],
                    worker=worker["proc"].pid,
                )

        while any(not w["done"] for w in workers):
            try:
                message = queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                message = None
            if message is not None:
                last_message = time.monotonic()
                kind = message[0]
                worker = by_pid.get(message[1])
                if kind == "cell":
                    _k, pid, index, payload, wall, t0_mono = message
                    if worker is not None:
                        worker["reported"].add(index)
                    if index not in outcomes:
                        outcomes[index] = (payload, wall)
                        trace.record(
                            labels[index], t0=t0_mono, dur=wall,
                            index=index, worker=pid, track=f"worker-{pid}",
                        )
                elif kind == "done":
                    _k, _pid, hits, misses, corrupted = message
                    report.cache_hits += hits
                    report.cache_misses += misses
                    report.cache_corrupted += corrupted
                    if worker is not None:
                        worker["done"] = True
                else:  # host-side bug in the worker body
                    host_errors.append(f"worker {message[1]}:\n{message[2]}")
                    if worker is not None:
                        worker["done"] = True
                continue

            # no message this poll: look for crashed workers...
            for worker in workers:
                if not worker["done"] and not worker["proc"].is_alive():
                    report.crashes_observed += 1
                    penalize(worker)
                    worker["done"] = True
            # ...then for a pool-wide hang
            if (
                cell_timeout is not None
                and time.monotonic() - last_message > cell_timeout
            ):
                for worker in workers:
                    if not worker["done"] and worker["proc"].is_alive():
                        report.hangs_observed += 1
                        worker["proc"].terminate()
                        worker["proc"].join()
                        penalize(worker)
                        worker["done"] = True

        for worker in workers:
            worker["proc"].join()

    report.worker_pids = tuple(pids)
    if host_errors:
        raise PoolError(
            f"{len(host_errors)} pool worker(s) failed:\n" + "\n".join(host_errors)
        )


def run_cells(
    spec: dict,
    cells: Sequence[object],
    jobs=None,
    registry=None,
    precomputed=None,
    trace=None,
) -> Tuple[List[object], PoolReport]:
    """Run every cell and return ``(payloads_in_cell_order, report)``.

    ``spec`` describes the cell kind plus its immutable per-run
    configuration (everything picklable); see :func:`_run_cell`.  Optional
    fault-injection keys: ``spec["plan"]`` (a
    :class:`~repro.faults.FaultPlan`) and ``spec["cell_timeout"]`` (wall
    seconds of pool-wide silence before unfinished workers are presumed
    hung).  With a resolved job count of 1 the cells run in-process
    through the *same* cell code path, so serial-vs-parallel comparisons
    always compare like with like; each payload is either the cell's
    result record or a :class:`CellFailure`.

    ``precomputed`` maps cell index to an already-known payload (an
    experiment-store memo hit).  Those cells are merged into the output
    in place without executing anything — a fully-precomputed call
    compiles nothing and runs zero guest cycles.

    ``trace`` is a :class:`~repro.trace.TraceContext` (or None): the
    fan-out opens a ``pool.run_cells`` span with one child span per
    executed cell (worker-stamped start times under parallel runs) plus
    retry/quarantine events.  Tracing is wall-clock telemetry only —
    payloads, the report's measured fields, and artifacts are identical
    with or without it.
    """
    trace = trace if trace is not None else NULL_CONTEXT
    njobs = resolve_jobs(jobs)
    started = time.perf_counter()
    indexed = list(enumerate(cells))
    outcomes: Dict[int, Tuple[object, float]] = {}
    report = PoolReport(cells=len(indexed), jobs=njobs)

    if precomputed:
        for index, payload in precomputed.items():
            outcomes[int(index)] = (payload, 0.0)
        report.memoized = len(precomputed)

    plan = spec.get("plan")
    if plan is not None:
        for index, _cell in indexed:
            record = plan.fault_record(index)
            if record is not None:
                report.worker_faults += 1
                report.retries += record.retries
                if record.outcome == "quarantined":
                    report.quarantined += 1

    pending = [(index, cell) for index, cell in indexed if index not in outcomes]
    with trace.child(
        "pool.run_cells", cells=len(indexed), jobs=njobs,
        memoized=report.memoized, track="pool",
    ) as pool_trace:
        if not pending:
            pass
        elif njobs <= 1 or len(pending) <= 1:
            _run_serial(spec, pending, outcomes, report, trace=pool_trace)
        else:
            _run_parallel(spec, pending, njobs, outcomes, report,
                          trace=pool_trace)

    report.wall_seconds = time.perf_counter() - started
    ordered = [outcomes[index] for index, _ in indexed]
    report.cell_wall = [wall for _, wall in ordered]
    if registry is not None:
        report.record(registry)
    return [payload for payload, _ in ordered], report
