"""``repro-trace`` — inspect and export service trace logs.

::

    repro-trace ls LOG.jsonl
    repro-trace show LOG.jsonl [--trace ID]
    repro-trace export LOG.jsonl [--trace ID] [--observe SIM.json ...]
                [--out MERGED.json]

``ls`` lists the traces in a JSONL span log with span counts and
end-to-end wall time; ``show`` prints one trace as an indented span
tree; ``export`` renders the wall-clock spans — optionally merged with
simulated-clock timelines from ``repro-prof export`` — into a single
Chrome trace-event file (two clock domains, one file; see
:mod:`repro.trace.chrome`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from .chrome import merge_chrome_trace
from .tracer import Span, load_jsonl, orphan_spans


def _load(args) -> List[Span]:
    try:
        spans = load_jsonl(args.log)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro-trace: {args.log}: {exc}")
    if getattr(args, "trace", None):
        spans = [s for s in spans if s.trace_id.startswith(args.trace)]
        if not spans:
            raise SystemExit(f"repro-trace: no spans for trace {args.trace!r}")
    return spans


def cmd_ls(args) -> int:
    spans = _load(args)
    by_trace: Dict[str, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    print(f"{'trace':<32} {'spans':>6} {'events':>6} {'wall':>9}  roots")
    for trace_id, group in by_trace.items():
        timed = [s for s in group if s.kind == "span"]
        wall = (
            max(s.t0 + s.dur for s in timed) - min(s.t0 for s in timed)
            if timed else 0.0
        )
        roots = sorted({s.name for s in group if s.parent_id is None})
        print(f"{trace_id:<32} {sum(1 for s in group if s.kind == 'span'):>6} "
              f"{sum(1 for s in group if s.kind == 'event'):>6} "
              f"{wall:>8.3f}s  {', '.join(roots)}")
    return 0


def _render_tree(spans: List[Span], out) -> None:
    children: Dict[Optional[str], List[Span]] = {}
    t_base = min(s.t0 for s in spans)
    for span in sorted(spans, key=lambda s: s.t0):
        children.setdefault(span.parent_id, []).append(span)
    known = {s.span_id for s in spans}

    def walk(span: Span, depth: int) -> None:
        marker = "*" if span.kind == "event" else ""
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        print(
            f"  {(span.t0 - t_base) * 1e3:9.2f}ms {span.dur * 1e3:9.2f}ms "
            f"{'  ' * depth}{span.name}{marker}"
            + (f"  [{attrs}]" if attrs else ""),
            file=out,
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    roots = [s for s in spans
             if s.parent_id is None or s.parent_id not in known]
    print(f"  {'start':>11} {'dur':>11}", file=out)
    for root in sorted(roots, key=lambda s: s.t0):
        walk(root, 0)


def cmd_show(args) -> int:
    spans = _load(args)
    by_trace: Dict[str, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    for trace_id, group in by_trace.items():
        orphans = orphan_spans(group)
        print(f"trace {trace_id}: {len(group)} spans"
              + (f", {len(orphans)} ORPHANED" if orphans else ""))
        _render_tree(group, sys.stdout)
    return 0


def cmd_export(args) -> int:
    spans = _load(args)
    observe_traces = []
    for path in args.observe:
        try:
            with open(path) as handle:
                trace = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro-trace: {path}: {exc}")
        if "traceEvents" not in trace:
            raise SystemExit(f"repro-trace: {path}: not a trace-event file")
        observe_traces.append(trace)
    merged = merge_chrome_trace(spans, observe_traces)
    blob = json.dumps(merged, indent=1, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(blob)
        wall = sum(1 for e in merged["traceEvents"]
                   if e.get("pid") == 2 and e["ph"] != "M")
        sim = sum(1 for e in merged["traceEvents"]
                  if e.get("pid", 0) >= 10 and e["ph"] != "M")
        print(f"repro-trace: wrote {args.out} "
              f"({wall} wall-clock + {sim} simulated events)", file=sys.stderr)
    else:
        print(blob, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="inspect / export service trace JSONL logs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ls = sub.add_parser("ls", help="list traces in a span log")
    ls.add_argument("log", help="JSONL span log (repro-serve --trace-log)")
    ls.set_defaults(func=cmd_ls)

    show = sub.add_parser("show", help="print a trace as a span tree")
    show.add_argument("log")
    show.add_argument("--trace", default=None, help="trace id (prefix ok)")
    show.set_defaults(func=cmd_show)

    export = sub.add_parser(
        "export", help="Chrome trace-event export (wall + simulated domains)"
    )
    export.add_argument("log")
    export.add_argument("--trace", default=None, help="trace id (prefix ok)")
    export.add_argument("--observe", action="append", default=[],
                        metavar="SIM.json",
                        help="simulated-clock trace file(s) from repro-prof "
                             "export to merge in (repeatable)")
    export.add_argument("--out", default=None, metavar="FILE")
    export.set_defaults(func=cmd_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
