"""Wall-clock, span-structured tracing for the experiment service stack.

This is the *other* clock domain.  Everything the engine measures lives on
the simulated clock (:mod:`repro.observe`); this module instead follows a
real submission across real processes on the host's monotonic clock —
client request, daemon HTTP framing, job queue wait, executor, pool
fan-out, store memo lookup/record — so a slow or stalled submission is
visible end-to-end.  Nothing recorded here ever enters a measured
artifact: tracing is operational telemetry with the same discipline as
:class:`~repro.parallel.PoolReport`.

The contract mirrors distributed tracing: a **trace** is one logical
operation identified by a hex ``trace_id`` propagated across process and
HTTP boundaries (the ``X-Repro-Trace`` header); a **span** is one named,
timed region with a ``span_id`` and a ``parent_id`` linking it into the
trace tree.  Spans are recorded on ``time.monotonic()`` (comparable
across processes on one host — the pool's workers stamp cell start times
that the parent folds into the same trace) and fan out to pluggable
sinks: an in-memory ring buffer (served by ``GET /v1/traces/<id>``), a
JSONL event log (one span per line, flushed as it closes), and the
:class:`~repro.metrics.MetricsRegistry` latency histograms.

Zero-perturbation rule: code paths thread a :class:`TraceContext`
through; the disabled form is :data:`NULL_CONTEXT`, whose every method is
a no-op, so an untraced run executes no tracing logic beyond attribute
lookups and produces byte-identical artifacts (asserted by test).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional

#: the propagation header: ``<trace_id>`` or ``<trace_id>:<parent_span_id>``
TRACE_HEADER = "x-repro-trace"


def new_trace_id() -> str:
    """A fresh 128-bit hex trace id."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit hex span id."""
    return os.urandom(8).hex()


def format_trace_header(trace_id: str, span_id: Optional[str] = None) -> str:
    return f"{trace_id}:{span_id}" if span_id else trace_id


def parse_trace_header(value: Optional[str]):
    """``(trace_id, parent_span_id)`` from a header value; (None, None)
    when absent or unusable.  Ids are hex-validated so a hostile header
    cannot smuggle arbitrary bytes into the JSONL log."""
    if not value:
        return None, None
    trace_id, _, parent = value.strip().partition(":")

    def _hex(s):
        try:
            int(s, 16)
        except ValueError:
            return False
        return 0 < len(s) <= 64

    if not _hex(trace_id):
        return None, None
    return trace_id, (parent if _hex(parent) else None)


class Span:
    """One closed, timed region of a trace.  ``t0`` is ``time.monotonic()``
    seconds, ``dur`` is seconds (0.0 for point events)."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "t0", "dur",
                 "kind", "attrs")

    def __init__(self, trace_id, span_id, parent_id, name, t0, dur,
                 kind="span", attrs=None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t0 = t0
        self.dur = dur
        self.kind = kind
        self.attrs = attrs or {}

    def to_dict(self) -> dict:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0": self.t0,
            "dur": self.dur,
            "kind": self.kind,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            data["trace"], data["span"], data.get("parent"), data["name"],
            data["t0"], data["dur"], data.get("kind", "span"),
            data.get("attrs") or {},
        )


class JsonlSink:
    """Append each finished span as one JSON line (flushed immediately, so
    a killed daemon loses at most the span being written).

    Writes take a lock: with ``--workers N`` the daemon's executor threads
    all close spans concurrently, and an unlocked ``write`` + ``flush``
    pair can interleave two spans into one corrupt line.  Each span is
    serialized outside the lock and written as a single string, so the
    critical section is one buffered write + flush.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "a")
        self._lock = threading.Lock()

    def __call__(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()

    def flush(self) -> None:
        """Force buffered lines to disk (drain calls this before the
        daemon exits; per-span writes already flush, so this is the
        belt-and-braces barrier for the final lines)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            self._handle.close()


class Tracer:
    """Thread-safe span collector with pluggable sinks and a bounded
    in-memory ring buffer of the most recent spans."""

    def __init__(self, sinks: Iterable[Callable[[Span], None]] = (),
                 max_spans: int = 50_000) -> None:
        self.sinks: List[Callable[[Span], None]] = list(sinks)
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._lock = threading.Lock()
        #: wall-clock epoch matching monotonic 0, for absolute-time export
        self.monotonic_epoch_unix = time.time() - time.monotonic()

    # ------------------------------------------------------------- recording

    def record(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        t0: Optional[float] = None,
        dur: float = 0.0,
        kind: str = "span",
        attrs: Optional[dict] = None,
        span_id: Optional[str] = None,
    ) -> Span:
        """Record one already-timed span (explicit ``t0``/``dur``) — the
        API the pool uses to fold worker-reported cell times in."""
        span = Span(
            trace_id,
            span_id or new_span_id(),
            parent_id,
            name,
            time.monotonic() if t0 is None else t0,
            dur,
            kind,
            attrs,
        )
        return self.ingest(span)

    def ingest(self, span: Span) -> Span:
        """Fold one already-built span into the ring buffer and sinks —
        the path the daemon uses to adopt spans reported back by a job
        worker subprocess (monotonic clocks are comparable across
        processes on one host, so worker t0/dur need no translation)."""
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
            else:
                self.spans.append(span)
        for sink in self.sinks:
            sink(span)
        return span

    def flush(self) -> None:
        """Flush every sink that supports it (JSONL logs on drain)."""
        for sink in self.sinks:
            flush = getattr(sink, "flush", None)
            if callable(flush):
                flush()

    # --------------------------------------------------------------- queries

    def snapshot(self, trace_id: Optional[str] = None) -> List[Span]:
        with self._lock:
            spans = list(self.spans)
        if trace_id is None:
            return spans
        return [s for s in spans if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.snapshot():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    # --------------------------------------------------------------- context

    def context(self, trace_id: Optional[str] = None,
                parent_id: Optional[str] = None) -> "TraceContext":
        """A context rooted at ``parent_id`` (or trace root when None)."""
        return TraceContext(self, trace_id or new_trace_id(), parent_id)


class TraceContext:
    """One position in a trace tree: (tracer, trace id, current span id).

    ``child`` opens a nested span around a code region; ``record`` folds
    an externally-timed span in; ``event`` marks a zero-duration point
    (retries, quarantines).  All methods are safe to call from any
    thread.  The disabled counterpart is :data:`NULL_CONTEXT`.
    """

    __slots__ = ("tracer", "trace_id", "span_id")

    enabled = True

    def __init__(self, tracer: Tracer, trace_id: str,
                 span_id: Optional[str] = None) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id

    @contextmanager
    def child(self, name: str, **attrs):
        """Open a span around the with-block; yields the child context
        (whose ``set`` updates the span's attrs before it closes)."""
        span_id = new_span_id()
        ctx = _OpenSpanContext(self.tracer, self.trace_id, span_id, dict(attrs))
        t0 = time.monotonic()
        try:
            yield ctx
        finally:
            self.tracer.record(
                name,
                self.trace_id,
                parent_id=self.span_id,
                t0=t0,
                dur=time.monotonic() - t0,
                attrs=ctx._attrs,
                span_id=span_id,
            )

    def record(self, name: str, t0: float, dur: float, **attrs) -> None:
        self.tracer.record(
            name, self.trace_id, parent_id=self.span_id,
            t0=t0, dur=dur, attrs=attrs or None,
        )

    def event(self, name: str, **attrs) -> None:
        self.tracer.record(
            name, self.trace_id, parent_id=self.span_id,
            dur=0.0, kind="event", attrs=attrs or None,
        )

    def set(self, **attrs) -> None:  # pragma: no cover - overridden where open
        """Attrs on a closed/root context go nowhere (kept for symmetry)."""

    def header(self) -> str:
        return format_trace_header(self.trace_id, self.span_id)


class _OpenSpanContext(TraceContext):
    """The context yielded inside ``child`` — same API, plus its ``set``
    lands on the span being recorded when the block closes."""

    __slots__ = ("_attrs",)

    def __init__(self, tracer, trace_id, span_id, attrs):
        super().__init__(tracer, trace_id, span_id)
        self._attrs = attrs

    def set(self, **attrs) -> None:
        self._attrs.update(attrs)


class _NullContext:
    """The disabled trace context: every operation is a no-op, so threading
    a context through hot paths costs one attribute lookup when tracing is
    off and artifacts stay byte-identical."""

    __slots__ = ()

    enabled = False
    tracer = None
    trace_id = None
    span_id = None

    @contextmanager
    def child(self, name: str, **attrs):
        yield self

    def record(self, name: str, t0: float, dur: float, **attrs) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def set(self, **attrs) -> None:
        pass

    def header(self) -> Optional[str]:
        return None


#: the shared disabled context — pass this (or None) to trace= parameters
NULL_CONTEXT = _NullContext()


# ------------------------------------------------------------------ analysis


def load_jsonl(path: str) -> List[Span]:
    """Read a JSONL trace log back into spans (blank lines skipped)."""
    spans = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def orphan_spans(spans: Iterable[Span]) -> List[Span]:
    """Spans whose ``parent`` id is not itself in the span set (per trace).
    An empty list is the well-formedness invariant the tests pin."""
    spans = list(spans)
    known = {(s.trace_id, s.span_id) for s in spans}
    return [
        s for s in spans
        if s.parent_id is not None and (s.trace_id, s.parent_id) not in known
    ]


def covered_seconds(spans: Iterable[Span], t0: float, t1: float) -> float:
    """Total seconds of ``[t0, t1]`` covered by the union of the spans'
    intervals — the measure behind the >= 95%% end-to-end coverage gate."""
    intervals = sorted(
        (max(s.t0, t0), min(s.t0 + s.dur, t1))
        for s in spans
        if s.t0 < t1 and s.t0 + s.dur > t0
    )
    covered = 0.0
    cursor = t0
    for start, end in intervals:
        if end <= cursor:
            continue
        covered += end - max(start, cursor)
        cursor = max(cursor, end)
    return covered
