"""``repro.trace`` — wall-clock, span-structured service tracing.

The second clock domain next to :mod:`repro.observe` (simulated cycles):
spans follow one submission end-to-end across the client, the daemon's
HTTP framing, the job queue, the executor, the :mod:`repro.parallel`
fan-out, and the store — propagated via the ``X-Repro-Trace`` header and
a :class:`TraceContext` threaded through ``baseline.collect`` and
``run_cells``.  Sinks: an in-memory ring buffer, a JSONL event log, and
Chrome trace-event export merging both clock domains into one file
(:mod:`repro.trace.chrome`; ``repro-trace`` is the CLI).
"""

from .chrome import SIM_PID_BASE, WALL_PID, merge_chrome_trace, spans_to_events
from .tracer import (
    NULL_CONTEXT,
    TRACE_HEADER,
    JsonlSink,
    Span,
    TraceContext,
    Tracer,
    covered_seconds,
    format_trace_header,
    load_jsonl,
    new_span_id,
    new_trace_id,
    orphan_spans,
    parse_trace_header,
)

__all__ = [
    "JsonlSink",
    "NULL_CONTEXT",
    "SIM_PID_BASE",
    "Span",
    "TRACE_HEADER",
    "TraceContext",
    "Tracer",
    "WALL_PID",
    "covered_seconds",
    "format_trace_header",
    "load_jsonl",
    "merge_chrome_trace",
    "new_span_id",
    "new_trace_id",
    "orphan_spans",
    "parse_trace_header",
    "spans_to_events",
]
