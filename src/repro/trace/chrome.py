"""Chrome trace-event export merging two clock domains into one file.

The repo already exports *simulated*-clock timelines
(:meth:`repro.observe.Timeline.to_chrome_trace`: guest cycles converted
to microseconds at a nominal clock).  The service tracer records
*wall*-clock spans.  This module renders both into a single trace-event
JSON file that loads in Perfetto / ``chrome://tracing``, keeping the
domains honest by separating them into distinct *processes*:

* ``pid 2`` — "service (wall clock)": tracer spans, ``ts`` relative to
  the earliest span.
* ``pid 10+i`` — one process per attached simulated timeline, its events
  re-pid'd from the Timeline's fixed ``pid 1`` so multiple cells'
  simulated traces can ride along without colliding.

Timestamps across the two domains are **not** commensurable (a simulated
microsecond is not a wall microsecond); the merge is for side-by-side
structure, and ``otherData.clock_domains`` says so explicitly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .tracer import Span

#: process ids of the merged file's clock domains
WALL_PID = 2
SIM_PID_BASE = 10


def spans_to_events(spans: Iterable[Span], t_base: Optional[float] = None,
                    pid: int = WALL_PID) -> List[dict]:
    """Tracer spans as complete ('X') / instant ('I') trace events.

    Tracks (``tid``) group spans by their ``track`` attr — the pool sets
    per-worker tracks, the daemon per-subsystem ones — falling back to
    one shared track.  ``ts`` is microseconds since ``t_base`` (default:
    the earliest span).
    """
    spans = list(spans)
    if not spans:
        return []
    if t_base is None:
        t_base = min(s.t0 for s in spans)
    tracks = sorted({str(s.attrs.get("track", "main")) for s in spans})
    tid_of = {track: index for index, track in enumerate(tracks)}
    events: List[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in tid_of.items()
    ]
    for span in spans:
        tid = tid_of[str(span.attrs.get("track", "main"))]
        event = {
            "name": span.name,
            "ph": "I" if span.kind == "event" else "X",
            "ts": (span.t0 - t_base) * 1e6,
            "pid": pid,
            "tid": tid,
            "cat": "service",
        }
        if event["ph"] == "X":
            event["dur"] = span.dur * 1e6
        args = {"trace": span.trace_id, "span": span.span_id}
        if span.parent_id:
            args["parent"] = span.parent_id
        args.update(span.attrs)
        event["args"] = args
        events.append(event)
    return events


def merge_chrome_trace(
    spans: Iterable[Span],
    observe_traces: Iterable[dict] = (),
    meta: Optional[dict] = None,
) -> dict:
    """One trace-event JSON object holding both clock domains.

    ``observe_traces`` are trace dicts as produced by
    :meth:`repro.observe.Timeline.to_chrome_trace` (or loaded from a
    ``repro-prof export`` file); their events keep their own timestamps
    but move to a dedicated pid so the wall-clock events never interleave
    with them on a track.
    """
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": WALL_PID,
            "args": {"name": "service (wall clock)"},
        }
    ]
    events.extend(spans_to_events(spans))
    domains: Dict[str, object] = {
        f"pid {WALL_PID}": "wall clock (monotonic seconds -> us)",
    }
    for index, trace in enumerate(observe_traces):
        pid = SIM_PID_BASE + index
        other = trace.get("otherData", {})
        label = other.get("label") or f"simulated #{index}"
        clock_hz = other.get("clock_hz")
        name = f"{label} (simulated clock)"
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": name}}
        )
        for event in trace.get("traceEvents", []):
            moved = dict(event)
            moved["pid"] = pid
            events.append(moved)
        domains[f"pid {pid}"] = (
            f"simulated cycles at {clock_hz:g} Hz -> us"
            if clock_hz else "simulated clock -> us"
        )
    merged: dict = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock_domains": domains,
            "note": (
                "wall and simulated timestamps are not commensurable; "
                "domains are separated per process"
            ),
        },
    }
    if meta:
        merged["otherData"].update(meta)
    return merged
