"""Pseudo-x86 rendering of JIT-compiled MIR — the Tables 6-8 reproduction.

The paper's section 5 compares the x86 each VM's JIT emits for the integer
division benchmark.  This emitter renders our per-profile MIR in the same
dialect: enregistered vregs become machine registers, spilled vregs become
``dword ptr [ebp-XXh]`` frame slots, constants fold to immediates where the
profile's emitter does, integer division shows the real ``cdq``/``idiv``
sequence — or SSCLI's emulated cdq ("makes a mess of it by emulating the
cdq instruction with loads and shifts", Table 8).

This is presentation only; execution uses the MIR directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import mir

_REG_NAMES = ["esi", "edi", "ebx", "ecx", "eax", "edx", "r8d", "r9d", "r10d", "r11d"]


class X86Renderer:
    def __init__(self, fn: mir.MIRFunction, profile) -> None:
        self.fn = fn
        self.profile = profile
        self._reg_of: Dict[int, str] = {}
        self._slot_of: Dict[int, int] = {}
        self._next_slot = 0x10
        self._const_of: Dict[int, object] = {}
        for i, ins in enumerate(fn.code):
            if ins.op == mir.LDI and isinstance(ins.a, (int, float)):
                # a vreg only ever defined by this constant renders as an
                # immediate when the profile folds constants
                if profile.jit.constant_folding and self._single_def(ins.dst, i):
                    self._const_of[ins.dst] = ins.a

    def _single_def(self, vreg: int, at: int) -> bool:
        return sum(1 for k in self.fn.code if k.dst == vreg) == 1

    # ----------------------------------------------------------- locations

    def loc(self, vreg: object) -> str:
        if not isinstance(vreg, int) or vreg < 0:
            return "?"
        if vreg in self._const_of:
            return self.imm(self._const_of[vreg])
        if vreg < len(self.fn.in_register) and self.fn.in_register[vreg]:
            name = self._reg_of.get(vreg)
            if name is None:
                name = _REG_NAMES[len(self._reg_of) % len(_REG_NAMES)]
                self._reg_of[vreg] = name
            return name
        slot = self._slot_of.get(vreg)
        if slot is None:
            slot = self._next_slot
            self._slot_of[vreg] = slot
            self._next_slot += 4
        return f"dword ptr [ebp-{slot:x}h]"

    @staticmethod
    def imm(value: object) -> str:
        if isinstance(value, float):
            return repr(value)
        if isinstance(value, int):
            return f"0x{value & 0xFFFFFFFF:x}" if abs(value) > 255 else str(value)
        if value is None:
            return "0  ; null"
        return repr(value)

    def is_mem(self, operand: str) -> bool:
        return operand.startswith("dword")

    # ------------------------------------------------------------- rendering

    def render(self) -> List[str]:
        out: List[str] = []
        labels = {ins.target for ins in self.fn.code if ins.target >= 0}
        for i, ins in enumerate(self.fn.code):
            if i in labels:
                out.append(f"L{i:04x}:")
            out.extend("        " + line for line in self._render_one(ins))
        return out

    def _mov(self, dst: str, src: str) -> List[str]:
        if dst == src:
            return []
        if self.is_mem(dst) and self.is_mem(src):
            # x86 has no mem-to-mem mov: stage through eax (the Table 7/8 shape)
            return [f"mov     eax, {src}", f"mov     {dst}, eax"]
        return [f"mov     {dst}, {src}"]

    _ALU = {
        mir.ADD: "add", mir.SUB: "sub", mir.AND: "and", mir.OR: "or",
        mir.XOR: "xor", mir.SHL: "shl", mir.SHR: "sar", mir.SHRU: "shr",
    }
    _JCC = {
        mir.JEQ: "je", mir.JNE: "jne", mir.JLT: "jl", mir.JLE: "jle",
        mir.JGT: "jg", mir.JGE: "jge",
    }
    _SETCC = {
        mir.CEQ: "sete", mir.CNE: "setne", mir.CLT: "setl", mir.CLE: "setle",
        mir.CGT: "setg", mir.CGE: "setge",
    }

    def _render_one(self, ins: mir.MInstr) -> List[str]:
        o = ins.op
        if o == mir.NOP:
            return ["nop"]
        if o == mir.LDI:
            if ins.dst in self._const_of:
                return []  # folded into its uses
            return [f"mov     {self.loc(ins.dst)}, {self.imm(ins.a)}"]
        if o == mir.MOV:
            return self._mov(self.loc(ins.dst), self.loc(ins.a))
        if o == mir.DIV and ins.kind in ("i4", "i8"):
            lines = [f"mov     eax, {self.loc(ins.a)}"]
            if self.profile.jit.cdq_emulation:
                # SSCLI: emulated cdq with loads and shifts (paper Table 8)
                lines += [
                    "mov     edx, eax",
                    "sar     edx, 0x1f",
                ]
            else:
                lines.append("cdq")
            divisor = self.loc(ins.b)
            if not self.is_mem(divisor) and divisor.startswith("0x") or divisor.isdigit():
                # idiv cannot take an immediate: stage it (the CLR quirk
                # stages through the frame, others use a scratch register)
                if self.profile.jit.const_div_quirk:
                    lines += [
                        f"mov     dword ptr [esp+10h], {divisor}",
                        "mov     ecx, dword ptr [esp+10h]",
                    ]
                else:
                    lines.append(f"mov     ecx, {divisor}")
                divisor = "ecx"
            lines.append(f"idiv    eax, {divisor}")
            lines += self._mov(self.loc(ins.dst), "eax")
            return lines
        if o == mir.DIV or o == mir.REM:
            op_name = "fdiv" if ins.kind in ("r4", "r8") else "idiv"
            return (
                [f"mov     eax, {self.loc(ins.a)}"]
                + ([] if ins.kind in ("r4", "r8") else ["cdq"])
                + [f"{op_name:<7} eax, {self.loc(ins.b)}"]
                + self._mov(self.loc(ins.dst), "eax" if op_name == "idiv" else "eax")
            )
        if o == mir.MUL:
            dst = self.loc(ins.dst)
            a, b = self.loc(ins.a), self.loc(ins.b)
            if not self.is_mem(dst):
                return self._mov(dst, a) + [f"imul    {dst}, {b}"]
            return [f"mov     eax, {a}", f"imul    eax, {b}"] + self._mov(dst, "eax")
        if o in self._ALU:
            dst = self.loc(ins.dst)
            a, b = self.loc(ins.a), self.loc(ins.b)
            mnem = self._ALU[o]
            if dst == a and not self.is_mem(dst):
                return [f"{mnem:<7} {dst}, {b}"]
            if not self.is_mem(dst):
                return self._mov(dst, a) + [f"{mnem:<7} {dst}, {b}"]
            return [f"mov     eax, {a}", f"{mnem:<7} eax, {b}"] + self._mov(dst, "eax")
        if o == mir.NEG:
            return self._mov(self.loc(ins.dst), self.loc(ins.a)) + [f"neg     {self.loc(ins.dst)}"]
        if o == mir.NOT:
            return self._mov(self.loc(ins.dst), self.loc(ins.a)) + [f"not     {self.loc(ins.dst)}"]
        if o in self._SETCC:
            return [
                f"cmp     {self.loc(ins.a)}, {self.loc(ins.b)}",
                f"{self._SETCC[o]:<7} al",
                f"movzx   eax, al",
            ] + self._mov(self.loc(ins.dst), "eax")
        if o == mir.CONV:
            spec = str(ins.extra)
            if spec.startswith("r"):
                return [f"cvtsi2sd {self.loc(ins.dst)}, {self.loc(ins.a)}"] if ins.kind.startswith("i") else self._mov(self.loc(ins.dst), self.loc(ins.a))
            if ins.kind.startswith("r"):
                return [f"cvttsd2si {self.loc(ins.dst)}, {self.loc(ins.a)}"]
            return self._mov(self.loc(ins.dst), self.loc(ins.a))
        if o == mir.JMP:
            return [f"jmp     L{ins.target:04x}"]
        if o in (mir.JTRUE, mir.JFALSE):
            mnem = "jnz" if o == mir.JTRUE else "jz"
            return [f"test    {self.loc(ins.a)}, {self.loc(ins.a)}", f"{mnem:<7} L{ins.target:04x}"]
        if o in self._JCC:
            return [
                f"cmp     {self.loc(ins.a)}, {self.loc(ins.b)}",
                f"{self._JCC[o]:<7} L{ins.target:04x}",
            ]
        if o == mir.SWITCH:
            return [f"jmp     [jump_table + {self.loc(ins.a)}*4]"]
        if o == mir.RET:
            lines = []
            if isinstance(ins.a, int) and ins.a >= 0:
                lines += self._mov("eax", self.loc(ins.a))
            return lines + ["ret"]
        if o == mir.CALL:
            target = ins.extra
            if isinstance(target, tuple) and len(target) >= 2:
                name = getattr(target[1], "full_name", None) or str(target[1])
            else:
                name = "?"
            pushes = [f"push    {self.loc(v)}" for v in reversed(ins.args or [])]
            lines = pushes + [f"call    {name}"]
            if ins.dst >= 0:
                lines += self._mov(self.loc(ins.dst), "eax")
            return lines
        if o == mir.NEWOBJ:
            return [f"call    JIT_New ; {getattr(ins.extra, 'class_name', ins.extra)}"] + self._mov(self.loc(ins.dst), "eax")
        if o in (mir.NEWARR, mir.NEWARR_MD):
            return ["call    JIT_NewArr"] + self._mov(self.loc(ins.dst), "eax")
        if o == mir.LDLEN:
            return [f"mov     eax, dword ptr [{self.loc(ins.a)}+4] ; Length"] + self._mov(self.loc(ins.dst), "eax")
        if o == mir.LDELEM:
            lines = []
            if ins.bounds_check and self.profile.jit.boundscheck:
                lines += [
                    f"cmp     {self.loc(ins.b)}, dword ptr [{self.loc(ins.a)}+4]",
                    "jae     throw_range",
                ]
            lines += [f"mov     eax, [{self.loc(ins.a)}+{self.loc(ins.b)}*4+8]"]
            return lines + self._mov(self.loc(ins.dst), "eax")
        if o == mir.STELEM:
            lines = []
            if ins.bounds_check and self.profile.jit.boundscheck:
                lines += [
                    f"cmp     {self.loc(ins.b)}, dword ptr [{self.loc(ins.a)}+4]",
                    "jae     throw_range",
                ]
            return lines + [f"mov     [{self.loc(ins.a)}+{self.loc(ins.b)}*4+8], {self.loc(ins.c)}"]
        if o in (mir.LDELEM_MD, mir.STELEM_MD):
            return ["call    JIT_MDArrayAccess"]
        if o == mir.LDFLD:
            return [f"mov     eax, dword ptr [{self.loc(ins.a)}+{(ins.b or 0) * 4 + 8:#x}]"] + self._mov(self.loc(ins.dst), "eax")
        if o == mir.STFLD:
            return [f"mov     dword ptr [{self.loc(ins.a)}+{(ins.b or 0) * 4 + 8:#x}], {self.loc(ins.c)}"]
        if o in (mir.LDSFLD, mir.STSFLD):
            return ["mov     eax, dword ptr [statics]"] if o == mir.LDSFLD else ["mov     dword ptr [statics], eax"]
        if o == mir.BOX:
            return ["call    JIT_Box"] + self._mov(self.loc(ins.dst), "eax")
        if o == mir.UNBOX:
            return ["call    JIT_Unbox"] + self._mov(self.loc(ins.dst), "eax")
        if o in (mir.CASTCLASS, mir.ISINST):
            return ["call    JIT_CastClass"]
        if o == mir.STRUCT_COPY:
            return ["rep movsd ; struct copy"]
        if o == mir.THROW:
            return [f"mov     ecx, {self.loc(ins.a)}", "call    JIT_Throw"]
        if o == mir.RETHROW:
            return ["call    JIT_Rethrow"]
        if o == mir.LEAVE:
            return [f"call    JIT_EndCatch", f"jmp     L{ins.target:04x}"]
        if o == mir.ENDFINALLY:
            return ["ret     ; endfinally"]
        return [f"; {mir.name(o)}"]


def render_x86(fn: mir.MIRFunction, profile) -> str:
    """Render a compiled function as pseudo-x86 text."""
    header = [
        f"; {fn.full_name} as compiled by {profile.name} ({profile.description})",
        f"; {len(fn.code)} MIR instructions, "
        f"{fn.stats.get('enregistered', 0)} values enregistered, "
        f"{fn.stats.get('immediates', 0)} immediates",
    ]
    return "\n".join(header + X86Renderer(fn, profile).render())
