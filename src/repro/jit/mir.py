"""MIR — the register-based machine intermediate representation.

CIL is a stack machine; every JIT in the paper lowers it to register code of
very different quality (paper section 5, Tables 6-8).  Our MIR models that
stage: instructions operate on an unbounded virtual-register file, and the
*enregistration* pass then decides which vregs live in (modelled) physical
registers versus stack-frame slots.  Storage placement changes the cycle
cost of every access — the executor itself always reads ``frame.R[vreg]``;
performance differences are carried entirely by the deterministic cost
annotations, never by host-Python speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# ---------------------------------------------------------------------------
# opcodes
# ---------------------------------------------------------------------------

_names: List[str] = []


def _mop(name: str) -> int:
    _names.append(name)
    return len(_names) - 1


MOV = _mop("mov")          # dst <- src vreg
LDI = _mop("ldi")          # dst <- immediate (operand `a` is the constant)
ADD = _mop("add")
SUB = _mop("sub")
MUL = _mop("mul")
DIV = _mop("div")
REM = _mop("rem")
AND = _mop("and")
OR = _mop("or")
XOR = _mop("xor")
SHL = _mop("shl")
SHR = _mop("shr")
SHRU = _mop("shru")
NEG = _mop("neg")
NOT = _mop("not")
CEQ = _mop("ceq")
CNE = _mop("cne")
CLT = _mop("clt")
CLE = _mop("cle")
CGT = _mop("cgt")
CGE = _mop("cge")
CONV = _mop("conv")        # extra = target kind string
JMP = _mop("jmp")          # target
JTRUE = _mop("jtrue")      # a, target
JFALSE = _mop("jfalse")    # a, target
JEQ = _mop("jeq")          # a, b, target
JNE = _mop("jne")
JLT = _mop("jlt")
JLE = _mop("jle")
JGT = _mop("jgt")
JGE = _mop("jge")
SWITCH = _mop("switch")    # a; extra = list of targets
CALL = _mop("call")        # dst (or -1), extra = CallInfo, args = list of vregs
RET = _mop("ret")          # a = vreg or -1
NEWOBJ = _mop("newobj")    # dst, extra = (class_name, ctor MethodRef|None), args
NEWARR = _mop("newarr")    # dst, a = length vreg, extra = elem type
NEWARR_MD = _mop("newarr.md")  # dst, args = dim vregs, extra = elem type
LDLEN = _mop("ldlen")      # dst, a = array
LDELEM = _mop("ldelem")    # dst, a = array, b = index; extra = elem kind
STELEM = _mop("stelem")    # a = array, b = index, c = value
LDELEM_MD = _mop("ldelem.md")  # dst, a = array, args = indices
STELEM_MD = _mop("stelem.md")  # a = array, c = value, args = indices
LDFLD = _mop("ldfld")      # dst, a = obj; extra = (class_name, field_name), b = slot (resolved)
STFLD = _mop("stfld")      # a = obj, c = value; b = slot
LDSFLD = _mop("ldsfld")    # dst; extra = (RuntimeClass, slot) resolved at link
STSFLD = _mop("stsfld")    # c = value; extra = (RuntimeClass, slot)
BOX = _mop("box")          # dst, a; extra = type name
UNBOX = _mop("unbox")      # dst, a; extra = CType
CASTCLASS = _mop("castclass")  # dst, a; extra = CType
ISINST = _mop("isinst")
STRUCT_COPY = _mop("struct.copy")  # dst, a
THROW = _mop("throw")      # a
RETHROW = _mop("rethrow")
LEAVE = _mop("leave")      # target
ENDFINALLY = _mop("endfinally")
NOP = _mop("nop")

COUNT = len(_names)


def name(code: int) -> str:
    return _names[code]


#: comparison value-op -> branch-op fusion table (peephole)
COMPARE_TO_JUMP = {CEQ: JEQ, CNE: JNE, CLT: JLT, CLE: JLE, CGT: JGT, CGE: JGE}
JUMP_NEGATE = {JEQ: JNE, JNE: JEQ, JLT: JGE, JGE: JLT, JGT: JLE, JLE: JGT}

ARITH = frozenset({ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SHL, SHR, SHRU})
COMPARES = frozenset({CEQ, CNE, CLT, CLE, CGT, CGE})
COND_JUMPS = frozenset({JTRUE, JFALSE, JEQ, JNE, JLT, JLE, JGT, JGE})
TERMINATORS = frozenset({JMP, RET, THROW, RETHROW, LEAVE, ENDFINALLY})


def branch_targets(fn) -> frozenset:
    """All MIR indices an explicit control transfer can land on.

    Computed once at JIT-finalize time (the pipeline stamps the result on
    the function as ``fn.branch_targets``); the threaded dispatch engine's
    superinstruction fuser refuses to fuse a pair whose second half is a
    target, so entering a pair sideways always hits a plain closure.
    Exception-region boundaries are a separate concern handled by the
    fuser itself (regions travel on ``fn.regions``).
    """
    targets = set()
    for ins in fn.code:
        o = ins.op
        if o == SWITCH:
            targets.update(ins.extra)
        elif (o == JMP or o == LEAVE or o in COND_JUMPS) and ins.target >= 0:
            targets.add(ins.target)
    return frozenset(targets)


@dataclass
class MInstr:
    """One MIR instruction.

    Field use varies by opcode (see the opcode table above); ``args`` holds
    variable-length vreg lists (call arguments, MD-array indices).  ``cost``
    is the static cycle cost stamped by the cost-finalization pass;
    ``bounds_check`` marks array accesses whose range check was *not*
    eliminated.
    """

    op: int
    dst: int = -1
    a: object = None
    b: object = None
    c: object = None
    extra: object = None
    args: Optional[List[int]] = None
    kind: str = "i4"
    target: int = -1
    cost: int = 1
    bounds_check: bool = True
    #: source IL index (for region mapping and diagnostics)
    il_index: int = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [name(self.op)]
        if self.dst >= 0:
            parts.append(f"v{self.dst} <-")
        for f in (self.a, self.b, self.c):
            if f is not None:
                parts.append(str(f))
        if self.args:
            parts.append(str(self.args))
        if self.target >= 0:
            parts.append(f"-> {self.target}")
        return " ".join(parts)


@dataclass
class MIRRegion:
    """Exception region with MIR-index boundaries."""

    kind: str  # 'catch' | 'finally'
    try_start: int
    try_end: int
    handler_start: int
    handler_end: int
    catch_type: Optional[str] = None
    #: vreg receiving the exception object at catch entry
    exc_vreg: int = -1

    def covers(self, index: int) -> bool:
        return self.try_start <= index < self.try_end


@dataclass
class MIRFunction:
    """A JIT-compiled method body."""

    full_name: str
    n_args: int
    code: List[MInstr] = field(default_factory=list)
    regions: List[MIRRegion] = field(default_factory=list)
    n_vregs: int = 0
    #: vreg -> True if placed in a (modelled) machine register
    in_register: List[bool] = field(default_factory=list)
    #: non-None when the function returns a struct needing copy (unused today)
    returns_void: bool = True
    #: the MethodDef this was compiled from
    method: object = None
    #: number of enregistered / spilled vregs (for reporting)
    stats: Dict[str, int] = field(default_factory=dict)

    def new_vreg(self) -> int:
        v = self.n_vregs
        self.n_vregs += 1
        return v
