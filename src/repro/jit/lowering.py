"""CIL -> MIR lowering (the stack-to-register translation every JIT does).

The evaluation stack is abstracted away: each push becomes a fresh virtual
register, locals and arguments get fixed vregs, and control-flow merge
points reconcile into canonical vregs (a simple phi-elimination).  The
resulting MIR deliberately still contains all the ``mov`` traffic of the
stack machine — whether it *stays* is up to the profile's copy-propagation
pass, which is exactly the difference between CLR-quality and
Mono/Rotor-quality code in the paper's Tables 6-8.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cil import cts, opcodes as op
from ..cil.metadata import MethodDef
from ..cil.typesim import annotate, stack_shapes
from ..errors import JitError
from . import mir

_BIN = {
    op.ADD: mir.ADD, op.SUB: mir.SUB, op.MUL: mir.MUL, op.DIV: mir.DIV,
    op.REM: mir.REM, op.AND: mir.AND, op.OR: mir.OR, op.XOR: mir.XOR,
    op.SHL: mir.SHL, op.SHR: mir.SHR, op.SHR_UN: mir.SHRU,
}
_CMP = {op.CEQ: mir.CEQ, op.CGT: mir.CGT, op.CLT: mir.CLT}
_JCC = {
    op.BEQ: mir.JEQ, op.BNE: mir.JNE, op.BGE: mir.JGE,
    op.BGT: mir.JGT, op.BLE: mir.JLE, op.BLT: mir.JLT,
}
_CONV_SPEC = {
    op.CONV_I1: "i1", op.CONV_U1: "u1", op.CONV_I2: "i2", op.CONV_U2: "u2",
    op.CONV_I4: "i4", op.CONV_I8: "i8", op.CONV_R4: "r4", op.CONV_R8: "r8",
}


def lower(method: MethodDef) -> mir.MIRFunction:
    """Translate one verified CIL method body to MIR."""
    body = method.body
    kinds = annotate(method)
    shapes = stack_shapes(method)

    fn = mir.MIRFunction(
        full_name=method.full_name,
        n_args=method.arg_count,
        returns_void=(method.return_type is cts.VOID),
        method=method,
    )
    n_args = method.arg_count
    n_locals = len(method.locals)
    fn.n_vregs = n_args + n_locals
    #: vreg index ranges: [0, n_args) args, [n_args, n_args+n_locals) locals
    local_vreg = lambda i: n_args + i

    # canonical stacks at branch targets with a non-empty entry stack
    targets: set = set()
    for i, instr in enumerate(body):
        if instr.opcode in op.BRANCHES:
            targets.add(instr.operand)
        elif instr.opcode == op.SWITCH:
            targets.update(instr.operand)
    for region in method.regions:
        targets.add(region.handler_start)

    canonical: Dict[int, List[int]] = {}
    for t in targets:
        shape = shapes.get(t)
        if shape:
            canonical[t] = [fn.new_vreg() for _ in shape]
    # catch-handler entries always carry the exception object
    handler_entry: Dict[int, int] = {}
    for region in method.regions:
        if region.kind == "catch":
            vregs = canonical.get(region.handler_start)
            if not vregs:
                vregs = [fn.new_vreg()]
                canonical[region.handler_start] = vregs
            handler_entry[region.handler_start] = vregs[0]

    code = fn.code
    mir_of_il: Dict[int, int] = {}
    stack: List[int] = []
    dead = False  # current position unreachable by fallthrough

    def emit(minstr: mir.MInstr) -> mir.MInstr:
        code.append(minstr)
        return minstr

    def push_fresh() -> int:
        v = fn.new_vreg()
        stack.append(v)
        return v

    def reconcile_to(target_vregs: List[int], il_index: int) -> None:
        """Move the current stack into the target's canonical vregs."""
        if len(stack) != len(target_vregs):
            raise JitError(
                f"{method.full_name}@{il_index}: stack depth mismatch "
                f"{len(stack)} vs {len(target_vregs)}"
            )
        for src, dst in zip(stack, target_vregs):
            if src != dst:
                emit(mir.MInstr(mir.MOV, dst=dst, a=src, il_index=il_index))

    for i, instr in enumerate(body):
        # merge-point bookkeeping
        if i in canonical:
            if not dead:
                reconcile_to(canonical[i], i)
            stack = list(canonical[i])
            dead = False
        elif dead:
            # only resurrect at positions the type simulation reached: a
            # target that exists solely inside unreachable code (e.g. the
            # front end folded `if (false)` into a `br` across it) must
            # stay dead, or its entry stack would be wrong
            if i in shapes and (
                i in targets
                or any(
                    r.handler_start == i or r.try_start == i
                    for r in method.regions
                )
            ):
                stack = []
                dead = False
        mir_of_il[i] = len(code)
        if dead:
            continue

        kind = kinds.get(i, "i4")
        c = instr.opcode

        if c == op.NOP:
            pass
        elif c in (op.LDC_I4, op.LDC_I8, op.LDC_R8):
            emit(mir.MInstr(mir.LDI, dst=push_fresh(), a=instr.operand, kind=kind, il_index=i))
        elif c == op.LDC_R4:
            from ..vm.values import r4 as _r4
            emit(mir.MInstr(mir.LDI, dst=push_fresh(), a=_r4(instr.operand), kind=kind, il_index=i))
        elif c == op.LDSTR:
            emit(mir.MInstr(mir.LDI, dst=push_fresh(), a=instr.operand, kind="ref", il_index=i))
        elif c == op.LDNULL:
            emit(mir.MInstr(mir.LDI, dst=push_fresh(), a=None, kind="ref", il_index=i))
        elif c == op.LDLOC:
            emit(mir.MInstr(mir.MOV, dst=push_fresh(), a=local_vreg(instr.operand), il_index=i))
        elif c == op.STLOC:
            emit(mir.MInstr(mir.MOV, dst=local_vreg(instr.operand), a=stack.pop(), kind=kind, il_index=i))
        elif c == op.LDARG:
            emit(mir.MInstr(mir.MOV, dst=push_fresh(), a=instr.operand, il_index=i))
        elif c == op.STARG:
            emit(mir.MInstr(mir.MOV, dst=instr.operand, a=stack.pop(), kind=kind, il_index=i))
        elif c in _BIN:
            b = stack.pop()
            a = stack.pop()
            emit(mir.MInstr(_BIN[c], dst=push_fresh(), a=a, b=b, kind=kind, il_index=i))
        elif c == op.NEG:
            a = stack.pop()
            emit(mir.MInstr(mir.NEG, dst=push_fresh(), a=a, kind=kind, il_index=i))
        elif c == op.NOT:
            a = stack.pop()
            emit(mir.MInstr(mir.NOT, dst=push_fresh(), a=a, kind=kind, il_index=i))
        elif c in _CMP:
            b = stack.pop()
            a = stack.pop()
            emit(mir.MInstr(_CMP[c], dst=push_fresh(), a=a, b=b, kind=kind, il_index=i))
        elif c in _CONV_SPEC:
            a = stack.pop()
            emit(mir.MInstr(
                mir.CONV, dst=push_fresh(), a=a,
                extra=_CONV_SPEC[c], kind=kind, il_index=i,
            ))
        elif c == op.BR:
            target = instr.operand
            if target in canonical:
                reconcile_to(canonical[target], i)
            emit(mir.MInstr(mir.JMP, target=target, il_index=i))
            dead = True
            stack = []
        elif c in (op.BRTRUE, op.BRFALSE):
            a = stack.pop()
            target = instr.operand
            if target in canonical:
                reconcile_to(canonical[target], i)
            emit(mir.MInstr(
                mir.JTRUE if c == op.BRTRUE else mir.JFALSE,
                a=a, target=target, kind=kind, il_index=i,
            ))
        elif c in _JCC:
            b = stack.pop()
            a = stack.pop()
            target = instr.operand
            if target in canonical:
                reconcile_to(canonical[target], i)
            emit(mir.MInstr(_JCC[c], a=a, b=b, target=target, kind=kind, il_index=i))
        elif c == op.SWITCH:
            a = stack.pop()
            emit(mir.MInstr(mir.SWITCH, a=a, extra=list(instr.operand), il_index=i))
        elif c == op.RET:
            a = -1 if method.return_type is cts.VOID else stack.pop()
            emit(mir.MInstr(mir.RET, a=a, il_index=i))
            dead = True
            stack = []
        elif c in (op.CALL, op.CALLVIRT):
            ref = instr.operand
            n = len(ref.param_types) + (0 if ref.is_static else 1)
            args = stack[len(stack) - n:] if n else []
            if n:
                del stack[len(stack) - n:]
            dst = -1 if ref.return_type is cts.VOID else fn.new_vreg()
            emit(mir.MInstr(
                mir.CALL, dst=dst, extra=(ref, c == op.CALLVIRT), args=args, il_index=i,
            ))
            if dst >= 0:
                stack.append(dst)
        elif c == op.NEWOBJ:
            ref = instr.operand
            n = len(ref.param_types)
            args = stack[len(stack) - n:] if n else []
            if n:
                del stack[len(stack) - n:]
            emit(mir.MInstr(mir.NEWOBJ, dst=push_fresh(), extra=ref, args=args, il_index=i))
        elif c == op.NEWARR:
            a = stack.pop()
            emit(mir.MInstr(mir.NEWARR, dst=push_fresh(), a=a, extra=instr.operand, il_index=i))
        elif c == op.NEWARR_MD:
            elem, rank = instr.operand
            args = stack[len(stack) - rank:]
            del stack[len(stack) - rank:]
            emit(mir.MInstr(mir.NEWARR_MD, dst=push_fresh(), args=args, extra=elem, il_index=i))
        elif c == op.LDLEN:
            a = stack.pop()
            emit(mir.MInstr(mir.LDLEN, dst=push_fresh(), a=a, il_index=i))
        elif c == op.LDELEM:
            b = stack.pop()
            a = stack.pop()
            emit(mir.MInstr(mir.LDELEM, dst=push_fresh(), a=a, b=b, kind=kind, il_index=i))
        elif c == op.STELEM:
            v = stack.pop()
            b = stack.pop()
            a = stack.pop()
            emit(mir.MInstr(mir.STELEM, a=a, b=b, c=v, kind=kind, il_index=i))
        elif c == op.LDELEM_MD:
            elem, rank = instr.operand
            idxs = stack[len(stack) - rank:]
            del stack[len(stack) - rank:]
            a = stack.pop()
            emit(mir.MInstr(mir.LDELEM_MD, dst=push_fresh(), a=a, args=idxs, kind=kind, il_index=i))
        elif c == op.STELEM_MD:
            elem, rank = instr.operand
            v = stack.pop()
            idxs = stack[len(stack) - rank:]
            del stack[len(stack) - rank:]
            a = stack.pop()
            emit(mir.MInstr(mir.STELEM_MD, a=a, c=v, args=idxs, kind=kind, il_index=i))
        elif c == op.LDFLD:
            a = stack.pop()
            emit(mir.MInstr(mir.LDFLD, dst=push_fresh(), a=a, extra=instr.operand, il_index=i))
        elif c == op.STFLD:
            v = stack.pop()
            obj = stack.pop()
            emit(mir.MInstr(mir.STFLD, a=obj, c=v, extra=instr.operand, kind=kind, il_index=i))
        elif c == op.LDSFLD:
            emit(mir.MInstr(mir.LDSFLD, dst=push_fresh(), extra=instr.operand, il_index=i))
        elif c == op.STSFLD:
            emit(mir.MInstr(mir.STSFLD, c=stack.pop(), extra=instr.operand, kind=kind, il_index=i))
        elif c == op.BOX:
            a = stack.pop()
            emit(mir.MInstr(mir.BOX, dst=push_fresh(), a=a, extra=instr.operand, il_index=i))
        elif c == op.UNBOX:
            a = stack.pop()
            emit(mir.MInstr(mir.UNBOX, dst=push_fresh(), a=a, extra=instr.operand, il_index=i))
        elif c == op.CASTCLASS:
            a = stack.pop()
            emit(mir.MInstr(mir.CASTCLASS, dst=push_fresh(), a=a, extra=instr.operand, il_index=i))
        elif c == op.ISINST:
            a = stack.pop()
            emit(mir.MInstr(mir.ISINST, dst=push_fresh(), a=a, extra=instr.operand, il_index=i))
        elif c == op.STRUCT_COPY:
            a = stack.pop()
            emit(mir.MInstr(mir.STRUCT_COPY, dst=push_fresh(), a=a, il_index=i))
        elif c == op.DUP:
            top = stack[-1]
            emit(mir.MInstr(mir.MOV, dst=push_fresh(), a=top, il_index=i))
        elif c == op.POP:
            stack.pop()
        elif c == op.THROW:
            emit(mir.MInstr(mir.THROW, a=stack.pop(), il_index=i))
            dead = True
            stack = []
        elif c == op.RETHROW:
            emit(mir.MInstr(mir.RETHROW, il_index=i))
            dead = True
            stack = []
        elif c == op.LEAVE:
            emit(mir.MInstr(mir.LEAVE, target=instr.operand, il_index=i))
            dead = True
            stack = []
        elif c == op.ENDFINALLY:
            emit(mir.MInstr(mir.ENDFINALLY, il_index=i))
            dead = True
            stack = []
        else:  # pragma: no cover - defensive
            raise JitError(f"cannot lower opcode {instr.mnemonic}")

    # ensure every method body ends in a terminator (void fallthrough)
    if not code or code[-1].op not in mir.TERMINATORS:
        code.append(mir.MInstr(mir.RET, a=-1))

    def map_il(il: int) -> int:
        if il in mir_of_il:
            return mir_of_il[il]
        if il >= len(body):
            return len(code)
        raise JitError(f"{method.full_name}: unmapped IL target {il}")

    for minstr in code:
        if minstr.target >= 0:
            minstr.target = map_il(minstr.target)
        if minstr.op == mir.SWITCH:
            minstr.extra = [map_il(t) for t in minstr.extra]

    for region in method.regions:
        fn.regions.append(
            mir.MIRRegion(
                kind=region.kind,
                try_start=map_il(region.try_start),
                try_end=map_il(region.try_end),
                handler_start=map_il(region.handler_start),
                handler_end=map_il(region.handler_end),
                catch_type=region.catch_type,
                exc_vreg=handler_entry.get(region.handler_start, -1),
            )
        )

    fn.in_register = [False] * fn.n_vregs
    return fn
