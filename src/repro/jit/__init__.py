"""``repro.jit`` — CIL-to-MIR compilation with per-profile optimization."""

from . import mir
from .lowering import lower
from .pipeline import JitCompiler

__all__ = ["mir", "lower", "JitCompiler"]
