"""Static cycle-cost finalization.

After all structural passes have run, every instruction gets a fixed cycle
cost: base cost by operation and kind, plus a memory penalty for every
operand whose vreg was not enregistered.  Dynamic costs (allocation size,
virtual dispatch, exception dispatch, GC, monitor contention, large-array
accesses) are charged by the executor at run time from the same profile.
"""

from __future__ import annotations

from . import mir
from .passes.inline import _vreg_fields


def _operand_vregs(ins: mir.MInstr):
    out = []
    for f in _vreg_fields(ins.op):
        v = getattr(ins, f)
        if isinstance(v, int) and v >= 0:
            out.append(v)
    if ins.dst >= 0:
        out.append(ins.dst)
    if ins.args:
        out.extend(ins.args)
    return out


def finalize_costs(fn: mir.MIRFunction, profile) -> None:
    t = profile.costs
    config = profile.jit
    in_reg = fn.in_register

    def mem_penalty(ins: mir.MInstr) -> int:
        total = 0
        for v in _operand_vregs(ins):
            if v >= len(in_reg) or not in_reg[v]:
                total += t.mem_operand
        return total

    for ins in fn.code:
        o = ins.op
        k = ins.kind
        if o in (mir.MOV, mir.LDI):
            base = t.mov
        elif o == mir.MUL:
            base = t.mul_r if k in ("r4", "r8") else (t.mul_i8 if k == "i8" else t.mul_i4)
        elif o == mir.DIV:
            base = t.div_r if k in ("r4", "r8") else (t.div_i8 if k == "i8" else t.div_i4)
        elif o == mir.REM:
            base = t.rem_extra + (
                t.div_r if k in ("r4", "r8") else (t.div_i8 if k == "i8" else t.div_i4)
            )
        elif o in mir.ARITH or o in (mir.NEG, mir.NOT):
            base = t.reg_op if k != "i8" else t.reg_op + 1
        elif o in mir.COMPARES:
            base = t.reg_op + 1
        elif o == mir.CONV:
            base = t.conv_r_i if (k in ("r4", "r8") and str(ins.extra).startswith(("i", "u"))) else t.conv
        elif o == mir.JMP:
            base = t.branch
        elif o in (mir.JTRUE, mir.JFALSE):
            base = t.branch + (0 if config.fuse_compare_branch else t.branch_not_fused_extra)
        elif o in mir.COND_JUMPS:
            base = t.branch + (0 if config.fuse_compare_branch else t.branch_not_fused_extra)
        elif o == mir.SWITCH:
            base = t.branch + 2
        elif o == mir.CALL:
            # frame setup charged dynamically by the executor (kind of call
            # unknown until dispatch); here only argument marshalling
            base = max(1, len(ins.args or ()))
        elif o == mir.NEWOBJ:
            base = 2  # allocation charged dynamically (size-dependent)
        elif o in (mir.NEWARR, mir.NEWARR_MD):
            base = 2
        elif o == mir.LDLEN:
            # length lives in the object header the access just touched and
            # typically folds into the guarding compare
            base = 1
        elif o in (mir.LDELEM, mir.STELEM):
            base = t.array_access + (t.bounds_check if ins.bounds_check and config.boundscheck else 0)
        elif o in (mir.LDELEM_MD, mir.STELEM_MD):
            rank = len(ins.args or ())
            base = (
                t.array_access
                + t.md_array_extra * max(1, rank)
                + (t.bounds_check * rank if ins.bounds_check and config.boundscheck else 0)
            )
        elif o in (mir.LDFLD, mir.STFLD):
            base = t.field_access
        elif o in (mir.LDSFLD, mir.STSFLD):
            base = t.static_access
        elif o == mir.BOX:
            base = t.box
        elif o == mir.UNBOX:
            base = t.unbox
        elif o in (mir.CASTCLASS, mir.ISINST):
            base = t.cast_check
        elif o == mir.STRUCT_COPY:
            base = 1  # rep-movs setup; per-field part charged dynamically
        elif o == mir.RET:
            base = 2
        elif o in (mir.THROW, mir.RETHROW):
            base = 2  # dispatch charged dynamically
        elif o in (mir.LEAVE, mir.ENDFINALLY):
            base = t.branch
        else:
            base = 1
        if o == mir.DIV and config.cdq_emulation and k in ("i4", "i8"):
            base += 3 * t.mem_operand  # the emulated cdq load/shift sequence
        ins.cost = base + mem_penalty(ins)
