"""The per-profile JIT compiler: lowering + pass pipeline + cost stamping.

One :class:`JitCompiler` per (profile, loaded assembly); compiled functions
are cached per MethodDef, mirroring a real JIT's code cache.

Pass ablation: every optimization pass can be individually disabled through
``disabled_passes`` (names in :data:`ABLATABLE_PASSES`) without deriving a
new profile.  All passes are semantics-preserving, so an ablated pipeline
must produce identical *results* (never identical cycles) — the invariant
the differential fuzzer (:mod:`repro.fuzz`) checks across the whole matrix.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from ..cil.metadata import MethodDef
from ..cil.instructions import MethodRef
from ..errors import JitError
from ..observe.jittrace import InlineDecision
from . import mir
from .costmodel import finalize_costs
from .lowering import lower
from .passes import (
    const_div_quirk,
    constant_fold,
    copy_propagate,
    dead_code_eliminate,
    eliminate_bounds_checks,
    enregister,
    inline_small_methods,
)
from .passes.boundscheck import clear_all_bounds_checks

#: pass names accepted by ``disabled_passes``; "simplify" covers the
#: fold/copy-propagate/DCE cluster that runs as one unit
ABLATABLE_PASSES = frozenset(
    {"boundscheck", "enregister", "inline", "simplify", "quirks"}
)

#: inline-cache miss sentinel: ``None`` is a *cached* answer ("this callee
#: is not inlinable"), so absence needs its own marker — a plain
#: ``.get(key)`` cannot distinguish the two in one lookup
_INLINE_MISS = object()


class JitCompiler:
    def __init__(
        self, loaded, profile, disabled_passes: Iterable[str] = (), trace=None
    ) -> None:
        self.loaded = loaded
        self.profile = profile
        #: optional repro.observe.JitTrace; recording is structural only
        #: (pass names + instruction counts + decisions), so traced and
        #: untraced compilations emit identical code and costs
        self.trace = trace
        self.disabled_passes: FrozenSet[str] = frozenset(disabled_passes)
        unknown = self.disabled_passes - ABLATABLE_PASSES
        if unknown:
            raise JitError(
                f"unknown JIT passes {sorted(unknown)}; "
                f"ablatable: {sorted(ABLATABLE_PASSES)}"
            )
        self._cache: Dict[int, mir.MIRFunction] = {}
        self._inline_cache: Dict[tuple, Optional[mir.MIRFunction]] = {}
        self._compiling: set = set()
        #: compile-effort accounting, kept whether or not a trace is wired:
        #: methods compiled and synthetic compile "cycles" (instructions
        #: processed: the lowered body plus each pass's input size).  These
        #: model JIT *work*, never enter ``machine.cycles``, and feed the
        #: metrics layer's ``jit.*`` series.
        self.compiled_methods = 0
        self.compile_effort = 0

    # ------------------------------------------------------------------ api

    def compile(self, method: MethodDef) -> mir.MIRFunction:
        key = id(method)
        fn = self._cache.get(key)
        if fn is None:
            fn = self._compile(method, allow_inline=True)
            self._cache[key] = fn
        return fn

    def is_compiled(self, method: MethodDef) -> bool:
        """True when ``method`` already has a cached MIR body (i.e. a
        further :meth:`compile` call performs no compilation work)."""
        return id(method) in self._cache

    # ------------------------------------------------------------- internals

    def _compile(self, method: MethodDef, allow_inline: bool) -> mir.MIRFunction:
        if not method.body:
            raise JitError(f"cannot JIT bodyless method {method.full_name}")
        config = self.profile.jit
        disabled = self.disabled_passes
        rec = (
            self.trace.begin(method.full_name, inline_candidate=not allow_inline)
            if self.trace is not None
            else None
        )
        fn = lower(method)
        effort = len(fn.code)
        if rec is not None:
            rec.lowered_instrs = len(fn.code)
        simplify_on = config.constant_folding and "simplify" not in disabled
        if simplify_on:
            before = len(fn.code)
            effort += before
            constant_fold(fn, self.profile)
            if rec is not None:
                rec.record_pass("constant_fold", before, fn)
        if allow_inline and config.inline_small_methods and "inline" not in disabled:
            before = len(fn.code)
            effort += before
            inline_small_methods(fn, self.profile, self._candidate_supplier(rec))
            if rec is not None:
                rec.record_pass("inline", before, fn)
            if simplify_on:
                before = len(fn.code)
                effort += before
                constant_fold(fn, self.profile)
                if rec is not None:
                    rec.record_pass("constant_fold", before, fn)
        if config.copy_propagation and "simplify" not in disabled:
            before = len(fn.code)
            effort += before
            copy_propagate(fn, self.profile)
            dead_code_eliminate(fn, self.profile)
            if rec is not None:
                rec.record_pass("copy_prop+dce", before, fn)
        if config.const_div_quirk and "quirks" not in disabled:
            before = len(fn.code)
            effort += before
            const_div_quirk(fn, self.profile)
            if rec is not None:
                rec.record_pass("const_div_quirk", before, fn)
        if not config.boundscheck:
            before = len(fn.code)
            effort += before
            clear_all_bounds_checks(fn, self.profile)
            if rec is not None:
                rec.record_pass("clear_bounds_checks", before, fn)
        elif (
            config.boundscheck_elim == "length-pattern"
            and "boundscheck" not in disabled
        ):
            before = len(fn.code)
            effort += before
            eliminate_bounds_checks(fn, self.profile)
            if rec is not None:
                rec.record_pass("boundscheck_elim", before, fn)
        before = len(fn.code)
        effort += before
        if "enregister" in disabled:
            # cost-only ablation: everything lives in the frame
            enregister(fn, self.profile.with_jit(enreg_mode="none"))
        else:
            enregister(fn, self.profile)
        if rec is not None:
            rec.record_pass("enregister", before, fn)
        finalize_costs(fn, self.profile)
        # resolved once per compile so the threaded dispatch engine's
        # superinstruction fuser never rescans the body (and so cached MIR
        # carries its control-flow landing sites with it)
        fn.branch_targets = mir.branch_targets(fn)
        self.compiled_methods += 1
        self.compile_effort += effort
        if rec is not None:
            rec.finish(fn)
        return fn

    def _candidate_supplier(self, rec):
        """The inline-candidate callback, wrapped to record each decision
        when tracing (the wrapper returns the exact same candidates)."""
        if rec is None:
            return self._inline_candidate

        def supplier(ref):
            callee = self._inline_candidate(ref)
            rec.inline_decisions.append(
                InlineDecision(
                    callee=f"{ref.class_name}::{ref.name}",
                    available=callee is not None,
                    size=0 if callee is None else len(callee.code),
                )
            )
            return callee

        return supplier

    def _inline_candidate(self, ref: MethodRef) -> Optional[mir.MIRFunction]:
        """Lowered, inline-disabled copy of a callee, or None when the ref
        is intrinsic/virtual/unresolvable/recursive."""
        # imported here to avoid a package-level cycle (vm.machine imports
        # the pipeline; the intrinsics module itself has no jit dependency)
        from ..vm.intrinsics import INTRINSIC_CLASSES

        if ref.class_name in INTRINSIC_CLASSES:
            return None
        key = (ref.class_name, ref.name, tuple(t.name for t in ref.param_types))
        cached = self._inline_cache.get(key, _INLINE_MISS)
        if cached is not _INLINE_MISS:
            return cached
        if key in self._compiling:
            return None
        try:
            method = self.loaded.resolve_method(ref)
        except Exception:
            self._inline_cache[key] = None
            return None
        if method.is_virtual or method.is_override or not method.body:
            self._inline_cache[key] = None
            return None
        self._compiling.add(key)
        try:
            fn = self._compile(method, allow_inline=False)
        finally:
            self._compiling.discard(key)
        self._inline_cache[key] = fn
        return fn
