"""JIT optimization passes.

Each pass is a function ``pass_(fn: MIRFunction, profile) -> None`` mutating
the function in place.  The pipeline (:mod:`repro.jit.pipeline`) selects
passes from the profile's :class:`~repro.runtimes.profile.JitConfig` — that
selection IS the modelled difference between the paper's JIT engines.
"""

from .boundscheck import eliminate_bounds_checks
from .enregister import enregister
from .inline import inline_small_methods
from .quirks import const_div_quirk
from .simplify import constant_fold, copy_propagate, dead_code_eliminate

__all__ = [
    "constant_fold",
    "copy_propagate",
    "dead_code_eliminate",
    "eliminate_bounds_checks",
    "enregister",
    "inline_small_methods",
    "const_div_quirk",
]
