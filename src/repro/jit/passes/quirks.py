"""Emitter quirks reproduced from the paper's disassembly study.

Table 6 (CLR 1.1, integer division): "It does something weird by
temporarily storing the constant in a variable, which appears to be an
unnecessary operation."  ``const_div_quirk`` re-creates that: when a
division's divisor is a block-known constant, the constant is staged
through a frame slot (an extra store + reload that the enregistration pass
is forbidden from optimizing away).

The SSCLI cdq-emulation quirk (Table 8) is purely a cost effect and lives
in the cost model (higher ``div_i4``); it needs no structural pass.
"""

from __future__ import annotations

from typing import List

from .. import mir


def _const_div_sites(fn: mir.MIRFunction) -> List[int]:
    """DIV instructions whose divisor vreg has a single LDI definition
    (recomputed here because earlier passes may have reindexed the code
    since constant folding recorded its candidates)."""
    defs = {}
    for i, ins in enumerate(fn.code):
        if ins.dst >= 0:
            defs.setdefault(ins.dst, []).append(i)
    sites = []
    for i, ins in enumerate(fn.code):
        if ins.op != mir.DIV or not isinstance(ins.b, int):
            continue
        d = defs.get(ins.b, [])
        if len(d) == 1 and fn.code[d[0]].op == mir.LDI:
            sites.append(i)
    return sites


def const_div_quirk(fn: mir.MIRFunction, profile=None) -> None:
    sites: List[int] = _const_div_sites(fn)
    if not sites:
        return
    force_spill = set(fn.stats.get("force_spill", ()))
    new_code: List[mir.MInstr] = []
    remap = {}
    inserted = 0
    site_set = set(sites)
    for i, ins in enumerate(fn.code):
        remap[i] = len(new_code)
        if i in site_set and ins.op == mir.DIV:
            staged = fn.new_vreg()
            force_spill.add(staged)
            new_code.append(
                mir.MInstr(mir.MOV, dst=staged, a=ins.b, il_index=ins.il_index)
            )
            ins.b = staged
            inserted += 1
        new_code.append(ins)
    remap[len(fn.code)] = len(new_code)
    if not inserted:
        return
    for ins in new_code:
        if ins.target >= 0:
            ins.target = remap[ins.target]
        if ins.op == mir.SWITCH:
            ins.extra = [remap[t] for t in ins.extra]
    for region in fn.regions:
        region.try_start = remap[region.try_start]
        region.try_end = remap.get(region.try_end, len(new_code))
        region.handler_start = remap[region.handler_start]
        region.handler_end = remap.get(region.handler_end, len(new_code))
    fn.code = new_code
    fn.in_register = [False] * fn.n_vregs
    fn.stats["force_spill"] = force_spill
    fn.stats["const_div_staged"] = inserted
