"""Small-method inlining.

Commercial JITs of the period inlined small non-virtual methods ("Many of
the optimizations depend on how much knowledge the JIT engine has built-up
about the state of the program", section 5); Mono 0.23 and SSCLI did not.
The Method micro-benchmark and the SciMark MonteCarlo kernel (paper:
"exercises ... function inlining") are sensitive to this.

A callee qualifies when its (separately lowered, inline-disabled) MIR body
is small, has no exception regions, and the call site is non-virtual.  The
body is spliced in with vregs and branch targets rebased; ``ret`` becomes a
move-plus-jump to the continuation.
"""

from __future__ import annotations

from dataclasses import replace as _replace
from typing import Callable, Dict, List, Optional, Set

from .. import mir

#: opcode fields holding vregs, by opcode (a/b/c hold non-vreg payloads for
#: some ops, so a per-op map is required for remapping)
_VREG_FIELDS: Dict[int, tuple] = {}


def _vreg_fields(op_code: int) -> tuple:
    cached = _VREG_FIELDS.get(op_code)
    if cached is not None:
        return cached
    if op_code == mir.LDI:
        fields = ()
    elif op_code in (mir.LDSFLD, mir.SWITCH):
        fields = ("a",) if op_code == mir.SWITCH else ()
    elif op_code == mir.STSFLD:
        fields = ("c",)
    else:
        fields = ("a", "b", "c")
    _VREG_FIELDS[op_code] = fields
    return fields


def _qualifies(callee: mir.MIRFunction, budget: int) -> bool:
    if callee.regions:
        return False
    if len(callee.code) > budget:
        return False
    for ins in callee.code:
        if ins.op in (mir.LEAVE, mir.ENDFINALLY, mir.RETHROW):
            return False
    return True


def inline_small_methods(
    fn: mir.MIRFunction,
    profile,
    compile_callee: Callable[[object], Optional[mir.MIRFunction]],
) -> None:
    """``compile_callee(MethodRef) -> MIRFunction|None`` supplies inline
    candidates (lowered with inlining disabled to bound recursion)."""
    budget = profile.jit.inline_budget
    sites: List[int] = []
    for i, ins in enumerate(fn.code):
        if ins.op != mir.CALL:
            continue
        ref, is_virtual = ins.extra
        if is_virtual or not getattr(ref, "class_name", None):
            continue
        sites.append(i)
    if not sites:
        return

    inlined = 0
    # process from last site to first so earlier indices stay valid
    for site in reversed(sites):
        ins = fn.code[site]
        ref, _virt = ins.extra
        callee = compile_callee(ref)
        if callee is None or not _qualifies(callee, budget):
            continue
        vreg_offset = fn.n_vregs
        fn.n_vregs += callee.n_vregs

        prologue: List[mir.MInstr] = []
        for k, arg in enumerate(ins.args or []):
            prologue.append(mir.MInstr(mir.MOV, dst=vreg_offset + k, a=arg))

        # rebased body; RETs jump to the continuation (site position after
        # splice), computed after we know body length
        body: List[mir.MInstr] = []
        positions: List[int] = []  # callee index -> body start offset
        # first pass to learn per-instruction expansion sizes (ret -> 1-2)
        code_offset = site + len(prologue)
        offsets = []
        acc = 0
        for cins in callee.code:
            offsets.append(acc)
            if cins.op == mir.RET and ins.dst >= 0 and isinstance(cins.a, int) and cins.a >= 0:
                acc += 2
            else:
                acc += 1
        total_len = acc
        ret_jump_to = code_offset + total_len

        for idx, cins in enumerate(callee.code):
            clone = _replace(cins)
            if clone.args:
                clone.args = [v + vreg_offset for v in clone.args]
            for f in _vreg_fields(clone.op):
                v = getattr(clone, f)
                if isinstance(v, int) and v >= 0 and clone.op != mir.RET:
                    setattr(clone, f, v + vreg_offset)
            if clone.dst >= 0:
                clone.dst += vreg_offset
            if clone.target >= 0:
                clone.target = code_offset + offsets[clone.target]
            if clone.op == mir.SWITCH:
                clone.extra = [code_offset + offsets[t] for t in clone.extra]
            if clone.op == mir.RET:
                if ins.dst >= 0 and isinstance(cins.a, int) and cins.a >= 0:
                    body.append(mir.MInstr(mir.MOV, dst=ins.dst, a=cins.a + vreg_offset))
                body.append(mir.MInstr(mir.JMP, target=ret_jump_to))
            else:
                body.append(clone)

        splice = prologue + body
        delta = len(splice) - 1  # replacing 1 CALL instruction

        # shift all caller targets/regions beyond the site
        for other in fn.code:
            if other.target > site:
                other.target += delta
            if other.op == mir.SWITCH:
                other.extra = [t + delta if t > site else t for t in other.extra]
        for region in fn.regions:
            for attr in ("try_start", "try_end", "handler_start", "handler_end"):
                v = getattr(region, attr)
                if v > site:
                    setattr(region, attr, v + delta)
        fn.code[site : site + 1] = splice
        inlined += 1

    if inlined:
        fn.in_register = [False] * fn.n_vregs
        fn.stats["inlined_calls"] = fn.stats.get("inlined_calls", 0) + inlined
