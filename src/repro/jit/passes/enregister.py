"""Enregistration — deciding which virtual registers get machine registers.

This is the paper's dominant effect (section 5): "The level of
optimizations produced by the JIT engines appears to be the dominating
factor in the resulting performance of the low-level compute benchmarks."
Three modes model the observed emitters:

* ``full`` (CLR 1.1, IBM JVM, HotSpot, JRockit, native): linear-scan
  allocation over live ranges — short-lived temporaries share registers,
  so a tight loop keeps everything register-resident, exactly the Table 6
  code ("uses registers and constants throughout the loop").  The CLR
  additionally only *tracks* the first 64 locals (``max_tracked_locals``),
  the documented enregistration cliff.
* ``partial`` (Mono 0.23): the same allocator but with a tiny budget and
  only expression temporaries eligible; named locals stay in the frame
  ("uses two memory locations for each of the variables").
* ``none`` (SSCLI): every value through memory (Table 8).

Values defined only by constant loads count as *immediates* when the
emitter folds constants (``constant_folding``): they encode into the
instruction (``cmp esi, 1000``) and consume no register.  Rotor does not
fold, so its constants round-trip through the frame.

The executor always reads ``frame.R[vreg]``; placement only changes the
per-instruction cycle cost stamped by the cost-model pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import mir
from .simplify import _uses


def _loop_weights(fn: mir.MIRFunction) -> List[int]:
    """Instruction weight = 10^loop-depth (approximated by backedge spans),
    capped to avoid pathological nesting."""
    spans: List[Tuple[int, int]] = []
    for j, ins in enumerate(fn.code):
        if ins.target >= 0 and ins.target <= j and (
            ins.op in mir.COND_JUMPS or ins.op == mir.JMP
        ):
            spans.append((ins.target, j))
    weights = [1] * len(fn.code)
    for start, end in spans:
        for k in range(start, end + 1):
            if weights[k] < 10_000:
                weights[k] *= 10
    return weights, spans


def _live_ranges(fn: mir.MIRFunction, spans) -> Dict[int, Tuple[int, int]]:
    """vreg -> (first def/use index, last use index), widened to enclosing
    loop spans so a value used across a backedge stays live for the whole
    loop."""
    ranges: Dict[int, List[int]] = {}
    for i, ins in enumerate(fn.code):
        touched = list(_uses(ins))
        if ins.dst >= 0:
            touched.append(ins.dst)
        for v in touched:
            r = ranges.get(v)
            if r is None:
                ranges[v] = [i, i]
            else:
                r[1] = i
    out: Dict[int, Tuple[int, int]] = {}
    for v, (start, end) in ranges.items():
        # a value whose range crosses a loop boundary is live for the whole
        # loop (it flows around the backedge); one fully inside dies within
        # a single iteration and keeps its short range
        changed = True
        while changed:
            changed = False
            for s, e in spans:
                crosses = (start < s <= end) or (start <= e < end)
                if crosses and not (start <= s and e <= end):
                    start = min(start, s)
                    end = max(end, e)
                    changed = True
        out[v] = (start, end)
    return out


def enregister(fn: mir.MIRFunction, profile) -> None:
    config = profile.jit
    fn.in_register = [False] * fn.n_vregs
    weights_list, spans = _loop_weights(fn)

    # constant-defined vregs become immediates when the emitter folds
    defs: Dict[int, List[int]] = {}
    for i, ins in enumerate(fn.code):
        if ins.dst >= 0:
            defs.setdefault(ins.dst, []).append(i)
    immediates: Set[int] = set()
    if config.constant_folding:
        for v, dl in defs.items():
            if all(
                fn.code[k].op == mir.LDI and isinstance(fn.code[k].a, (int, float))
                for k in dl
            ):
                immediates.add(v)
                if v < len(fn.in_register):
                    fn.in_register[v] = True

    if config.enreg_mode == "none" or config.reg_budget <= 0:
        # Rotor: not even immediates — constants go through the frame
        fn.in_register = [False] * fn.n_vregs
        fn.stats["enregistered"] = 0
        return

    usage: Dict[int, int] = {}
    for i, ins in enumerate(fn.code):
        w = weights_list[i]
        for v in _uses(ins):
            usage[v] = usage.get(v, 0) + w
        if ins.dst >= 0:
            usage[ins.dst] = usage.get(ins.dst, 0) + w

    n_args = fn.n_args
    method = fn.method
    n_locals = len(method.locals) if method is not None else 0
    local_range = range(n_args, n_args + n_locals)
    forced_spill: Set[int] = set(fn.stats.get("force_spill", ()))

    def eligible(v: int) -> bool:
        if v in forced_spill or v in immediates:
            return False
        if config.enreg_mode == "partial":
            # scratch temps only; named locals/args stay in the frame
            return v >= n_args + n_locals
        # full: the CLR tracking limit applies to *locals* beyond the cap
        if v in local_range and (v - n_args) >= config.max_tracked_locals:
            return False
        return True

    ranges = _live_ranges(fn, spans)
    intervals = sorted(
        (
            (ranges[v][0], ranges[v][1], usage.get(v, 0), v)
            for v in ranges
            if eligible(v)
        ),
        key=lambda t: t[0],
    )

    # linear scan: active intervals hold registers; on pressure, the
    # lowest-weight interval (incoming or active) spills
    budget = config.reg_budget
    active: List[Tuple[int, int, int]] = []  # (end, weight, vreg)
    placed = 0
    for start, end, weight, v in intervals:
        active = [a for a in active if a[0] >= start]
        if len(active) < budget:
            active.append((end, weight, v))
            fn.in_register[v] = True
            placed += 1
        else:
            victim = min(active, key=lambda a: a[1])
            if victim[1] < weight:
                active.remove(victim)
                fn.in_register[victim[2]] = False
                placed -= 1
                active.append((end, weight, v))
                fn.in_register[v] = True
                placed += 1
    fn.stats["enregistered"] = placed
    fn.stats["immediates"] = len(immediates)
