"""Array bounds-check elimination (the paper's section-5 case study).

    "One of these shortcuts is for example the elimination of in-loop array
    bound checks when the array index has a known relationship to the loop
    counter. [...] In CLR 1.1, we can easily force this optimization by
    using the array.Length property as the bounds in the loop; if we
    introduce this for example in the sparse matrix multiply kernel [...]
    we see an instant performance improvement of 15% or more."

The pattern recognized (conservatively) is::

    len = ldlen arr            ; anywhere before the loop, assigned once
    loop: ...
        x = ldelem arr, i      ; i is the loop counter, arr the same array
        ...
        i = add i, +const
        jlt i, len, loop       ; backedge guarded by i < len

When it matches, the range checks on ``arr[i]`` inside the loop are
dropped.  Loops bounded by a plain local (``i < n``) do NOT match — which
is exactly why rewriting SciMark's sparse kernel to use ``.Length`` gives
the measured speedup (see ``benchmarks/bench_ablation_boundscheck.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import mir


def _definitions(fn: mir.MIRFunction) -> Dict[int, List[int]]:
    """vreg -> indices of instructions writing it."""
    defs: Dict[int, List[int]] = {}
    for i, ins in enumerate(fn.code):
        if ins.dst >= 0:
            defs.setdefault(ins.dst, []).append(i)
    return defs


def eliminate_bounds_checks(fn: mir.MIRFunction, profile=None) -> None:
    code = fn.code
    defs = _definitions(fn)

    # find backedges: conditional jumps with target <= index
    for j, ins in enumerate(code):
        if ins.op not in (mir.JLT, mir.JLE) or ins.target < 0 or ins.target > j:
            continue
        head = ins.target
        i_vreg = ins.a
        bound_vreg = ins.b
        if not isinstance(i_vreg, int) or not isinstance(bound_vreg, int):
            continue
        # bound must be single-assigned, from ldlen of a stable array vreg;
        # the ldlen itself typically sits inside the loop (the test is
        # re-evaluated), which is fine — it always reloads the same length
        bound_defs = defs.get(bound_vreg, [])
        if len(bound_defs) != 1:
            continue
        bound_chain = {bound_defs[0]}
        src = code[bound_defs[0]]
        if src.op == mir.MOV and isinstance(src.a, int):
            inner = defs.get(src.a, [])
            if len(inner) != 1:
                continue
            bound_chain.add(inner[0])
            src = code[inner[0]]
        if src.op != mir.LDLEN or not isinstance(src.a, int):
            continue
        arr_vreg = src.a
        if len(defs.get(arr_vreg, [])) > 1:
            continue

        def _is_positive_const(vreg: object) -> bool:
            d = defs.get(vreg, []) if isinstance(vreg, int) else []
            if len(d) != 1 or code[d[0]].op != mir.LDI:
                return False
            step = code[d[0]].a
            return isinstance(step, int) and step > 0

        def _is_increment(w: mir.MInstr) -> bool:
            """w writes i_vreg; accept `i = add i, +c` directly or via one
            mov from a single-def add."""
            if w.op == mir.ADD and w.a == i_vreg and _is_positive_const(w.b):
                return True
            if w.op == mir.MOV and isinstance(w.a, int):
                d = defs.get(w.a, [])
                if len(d) == 1:
                    inner = code[d[0]]
                    if inner.op == mir.ADD and inner.a == i_vreg and _is_positive_const(inner.b):
                        return True
            return False

        ok = True
        body = range(head, j)
        for k in body:
            w = code[k]
            if w.dst == i_vreg:
                if not _is_increment(w):
                    ok = False
                    break
            elif w.dst == bound_vreg and k not in bound_chain:
                ok = False
                break
            elif w.dst == arr_vreg:
                ok = False
                break
        if not ok:
            continue
        eliminated = 0
        for k in body:
            w = code[k]
            if w.op in (mir.LDELEM, mir.STELEM) and w.a == arr_vreg and w.b == i_vreg:
                if w.bounds_check:
                    w.bounds_check = False
                    eliminated += 1
        fn.stats["bce_eliminated"] = fn.stats.get("bce_eliminated", 0) + eliminated


def clear_all_bounds_checks(fn: mir.MIRFunction, profile=None) -> None:
    """Native code: no range checks anywhere."""
    for ins in fn.code:
        if ins.op in (mir.LDELEM, mir.STELEM, mir.LDELEM_MD, mir.STELEM_MD):
            ins.bounds_check = False
