"""Scalar simplification passes: constant folding/propagation, copy
propagation, dead-code elimination.

All three are block-local (facts die at basic-block boundaries), matching
what period JITs actually did under their compile-time budgets.  Profiles
without these passes execute the raw stack-shuffle MIR — the paper's
"very close to the actual CIL code" observation about Mono and Rotor.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ...vm.values import i32, i64, r4 as round_r4
from .. import mir


def block_starts(fn: mir.MIRFunction) -> Set[int]:
    """Indices that start a basic block (jump targets, handler entries,
    instruction after a terminator/conditional)."""
    starts: Set[int] = {0}
    for i, ins in enumerate(fn.code):
        if ins.target >= 0:
            starts.add(ins.target)
        if ins.op == mir.SWITCH:
            starts.update(ins.extra)
        if ins.op in mir.TERMINATORS or ins.op in mir.COND_JUMPS:
            starts.add(i + 1)
    for region in fn.regions:
        starts.add(region.handler_start)
        starts.add(region.try_start)
    return starts


_FOLDABLE = {
    mir.ADD: lambda a, b: a + b,
    mir.SUB: lambda a, b: a - b,
    mir.MUL: lambda a, b: a * b,
    mir.AND: lambda a, b: a & b,
    mir.OR: lambda a, b: a | b,
    mir.XOR: lambda a, b: a ^ b,
}

_WRAP = {"i4": i32, "i8": i64, "r4": round_r4, "r8": float, "ref": lambda v: v}


def _global_constants(fn: mir.MIRFunction) -> Dict[int, object]:
    """vreg -> constant for vregs that are provably constant everywhere:
    a single definition by LDI (or a MOV chain from one), not skippable by a
    forward branch, with every use after the definition in code order."""
    code = fn.code
    defs: Dict[int, List[int]] = {}
    first_use: Dict[int, int] = {}
    for i, ins in enumerate(code):
        for v in _uses(ins):
            if v not in first_use:
                first_use[v] = i
        if ins.dst >= 0:
            defs.setdefault(ins.dst, []).append(i)
    # positions spanned by a forward branch (conditionally skipped code)
    spanned = [False] * len(code)
    for j, ins in enumerate(code):
        targets = []
        if ins.target > j:
            targets.append(ins.target)
        if ins.op == mir.SWITCH:
            targets.extend(t for t in ins.extra if t > j)
        for t in targets:
            for k in range(j + 1, min(t, len(code))):
                spanned[k] = True
    out: Dict[int, object] = {}
    changed = True
    while changed:
        changed = False
        for v, dl in defs.items():
            if v in out or len(dl) != 1:
                continue
            k = dl[0]
            if spanned[k]:
                continue
            if first_use.get(v, k + 1) <= k:
                continue
            ins = code[k]
            if ins.op == mir.LDI and isinstance(ins.a, (int, float)) and ins.kind != "r4":
                out[v] = ins.a
                changed = True
            elif ins.op == mir.MOV and isinstance(ins.a, int) and ins.a in out and ins.kind != "r4":
                out[v] = out[ins.a]
                changed = True
    return out


def constant_fold(fn: mir.MIRFunction, profile=None) -> None:
    """Constant propagation + folding.

    Block-local facts (LDI constants flowing through MOVs and simple ALU
    ops) are seeded with *global* single-assignment constants, so a
    loop-invariant ``int d = 3`` is visible inside the loop — which is how
    the CLR 1.1 "realizes that a constant is used" in the paper's division
    study (Table 6).  Constants seen at a DIV's divisor are recorded for
    the quirk pass (``fn.stats['const_divisors']``).
    """
    starts = block_starts(fn)
    global_consts = _global_constants(fn)
    consts: Dict[int, object] = dict(global_consts)
    const_divisors: List[int] = []
    for i, ins in enumerate(fn.code):
        if i in starts:
            consts.clear()
            consts.update(global_consts)
        o = ins.op
        if o == mir.LDI:
            if ins.dst >= 0:
                consts[ins.dst] = ins.a
            continue
        if o == mir.MOV:
            src = ins.a
            if src in consts and ins.kind != "r4":
                ins.op = mir.LDI
                ins.a = consts[src]
                consts[ins.dst] = ins.a
            else:
                consts.pop(ins.dst, None)
                if src in consts:
                    consts[ins.dst] = consts[src]
            continue
        if o in _FOLDABLE and ins.a in consts and ins.b in consts:
            va, vb = consts[ins.a], consts[ins.b]
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                try:
                    value = _WRAP.get(ins.kind, lambda v: v)(_FOLDABLE[o](va, vb))
                except TypeError:
                    value = None
                if value is not None:
                    ins.op = mir.LDI
                    ins.a = value
                    ins.b = None
                    consts[ins.dst] = value
                    continue
        if o == mir.DIV and ins.b in consts:
            const_divisors.append(i)
        # any write invalidates
        if ins.dst >= 0:
            consts.pop(ins.dst, None)
    fn.stats["const_divisors"] = const_divisors


def _uses(ins: mir.MInstr) -> List[int]:
    """vregs read by an instruction."""
    out: List[int] = []
    o = ins.op
    if o == mir.LDI:
        pass
    else:
        for f in (ins.a, ins.b, ins.c):
            if isinstance(f, int) and f >= 0 and o != mir.RET:
                out.append(f)
        if o == mir.RET and isinstance(ins.a, int) and ins.a >= 0:
            out.append(ins.a)
    if ins.args:
        out.extend(ins.args)
    return out


def _replace_uses(ins: mir.MInstr, mapping: Dict[int, int]) -> None:
    o = ins.op
    if o != mir.LDI:
        if isinstance(ins.a, int) and ins.a in mapping:
            ins.a = mapping[ins.a]
        if isinstance(ins.b, int) and ins.b in mapping:
            ins.b = mapping[ins.b]
        if isinstance(ins.c, int) and ins.c in mapping:
            ins.c = mapping[ins.c]
    if ins.args:
        ins.args = [mapping.get(v, v) for v in ins.args]


def copy_propagate(fn: mir.MIRFunction, profile=None) -> None:
    """Block-local copy propagation: rewrite uses of ``dst`` after
    ``mov dst <- src`` to use ``src`` while neither is redefined."""
    starts = block_starts(fn)
    copies: Dict[int, int] = {}
    n_args = fn.n_args
    for i, ins in enumerate(fn.code):
        if i in starts:
            copies.clear()
        _replace_uses(ins, copies)
        if ins.dst >= 0:
            # a write kills copies involving dst (either side)
            copies.pop(ins.dst, None)
            for k in [k for k, v in copies.items() if v == ins.dst]:
                copies.pop(k)
            # r4 moves are value-changing (rounding); don't propagate through
            if ins.op == mir.MOV and isinstance(ins.a, int) and ins.kind != "r4":
                copies[ins.dst] = ins.a


_PURE = frozenset(
    {mir.MOV, mir.LDI}
    | mir.ARITH
    | mir.COMPARES
    | {mir.NEG, mir.NOT, mir.CONV, mir.STRUCT_COPY, mir.LDLEN}
)


def dead_code_eliminate(fn: mir.MIRFunction, profile=None) -> None:
    """Remove pure instructions whose destination is never read.

    Division stays (it can raise); memory/array/field/call ops stay.
    Iterates to a fixpoint since removing one instruction can kill another.
    """
    changed = True
    while changed:
        changed = False
        live: Set[int] = set()
        for ins in fn.code:
            live.update(_uses(ins))
        new_code: List[mir.MInstr] = []
        # removal shifts indices: build an index remap
        remap: Dict[int, int] = {}
        removed_any = False
        for i, ins in enumerate(fn.code):
            remap[i] = len(new_code)
            if (
                ins.op in _PURE
                and ins.dst >= 0
                and ins.dst not in live
                and ins.dst >= fn.n_args  # never drop writes to args/locals? temps only
            ):
                removed_any = True
                changed = True
                continue
            new_code.append(ins)
        if not removed_any:
            break
        remap[len(fn.code)] = len(new_code)
        for ins in new_code:
            if ins.target >= 0:
                ins.target = remap[ins.target]
            if ins.op == mir.SWITCH:
                ins.extra = [remap[t] for t in ins.extra]
        for region in fn.regions:
            region.try_start = remap[region.try_start]
            region.try_end = remap.get(region.try_end, len(new_code))
            region.handler_start = remap[region.handler_start]
            region.handler_end = remap.get(region.handler_end, len(new_code))
        fn.code = new_code
