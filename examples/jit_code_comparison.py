#!/usr/bin/env python3
"""JIT code comparison — the paper's Tables 5-8 study, live.

Compiles the integer-division benchmark once to CIL, then shows what each
runtime's JIT makes of it: CLR 1.1 (registers + the constant-staging
quirk), the IBM JVM (clean registers and constants), Mono 0.23 (frame
slots, stack shuffle intact) and SSCLI (everything through memory plus the
emulated cdq).

Run:  python examples/jit_code_comparison.py [profile ...]
"""

import sys

from repro.cil.disassembler import disassemble_body
from repro.harness.experiments.tables_jit import DIVISION_SOURCE
from repro.jit.emitter import render_x86
from repro.jit.pipeline import JitCompiler
from repro.lang import compile_source
from repro.runtimes import MICRO_PROFILES, get_profile
from repro.vm.loader import LoadedAssembly


def main() -> None:
    names = sys.argv[1:]
    profiles = [get_profile(n) for n in names] if names else MICRO_PROFILES

    assembly = compile_source(DIVISION_SOURCE, assembly_name="divbench")
    method = assembly.find_method("DivBench", "Main")

    print("=== C# source (paper Table 5) ===")
    print(DIVISION_SOURCE.strip())
    print()
    print("=== CIL emitted by the single compile (paper Table 5) ===")
    for line in disassemble_body(method):
        print("  " + line)
    print()

    for profile in profiles:
        jit = JitCompiler(LoadedAssembly(assembly), profile)
        fn = jit.compile(method)
        print(f"=== {profile.name}: {profile.description} ===")
        print(render_x86(fn, profile))
        print()


if __name__ == "__main__":
    main()
