#!/usr/bin/env python3
"""SciMark shootout: regenerate the paper's Graph 9/10 data — the five
SciMark kernels across all eight runtime columns, small and large memory
models, with composite MFlops.

Run:  python examples/scimark_shootout.py [--fast]
"""

import sys

from repro.harness.charts import table
from repro.harness.experiments.graph09_scimark import (
    SCIMARK_CLOCK,
    composite,
    kernel_mflops,
)
from repro.harness.runner import Runner
from repro.runtimes import ALL_PROFILES


def main() -> None:
    scale = 0.4 if "--fast" in sys.argv else 1.0
    runner = Runner(profiles=ALL_PROFILES, clock_hz=SCIMARK_CLOCK)
    order = [p.name for p in ALL_PROFILES]

    for model in ("small", "large"):
        per_kernel = kernel_mflops(runner, model, scale)
        per_kernel["composite"] = composite(
            {k: v for k, v in per_kernel.items() if k != "composite"}
        )
        print(f"SciMark MFlops — {model} memory model "
              f"(simulated {SCIMARK_CLOCK / 1e9:.1f} GHz)")
        print(table(per_kernel, columns=order, row_header="kernel"))
        print()

    print("Expected shape (paper Graphs 9-11): C leads; IBM and the CLR are")
    print("the top VMs; BEA/Sun trail them; Mono ~half; Rotor far behind;")
    print("the C MonteCarlo column is anomalously fast because the native")
    print("build has no synchronized RNG (paper section 5).")


if __name__ == "__main__":
    main()
