#!/usr/bin/env python3
"""Matrix styles — the paper's Graph 12 irony, live.

"It is ironic to see that one of the major bottlenecks identified by the
Java Grande Forum, the lack of true multidimensional arrays, does not
appear under the CLR": true ``double[,]`` arrays exist — and run at ~25%
of jagged-array speed under CLR 1.1.

Run:  python examples/matrix_styles.py
"""

from repro.harness.charts import bar_chart
from repro.harness.runner import Runner
from repro.runtimes import CLR11, MONO023, NATIVE_C

SECTIONS = ("Matrix:MultiDim", "Matrix:Jagged", "Matrix:ValueType", "Matrix:ObjectType")


def main() -> None:
    profiles = [CLR11, MONO023, NATIVE_C]
    runner = Runner(profiles=profiles, clock_hz=2.8e9)
    runs = runner.run("clispec.matrix", {"N": 16, "Reps": 4})

    series = {
        s: {name: r.section(s).ops_per_sec for name, r in runs.items()}
        for s in SECTIONS
    }
    print(bar_chart(series, unit="copies/sec",
                    profile_order=[p.name for p in profiles],
                    title="Matrix copy styles (Graph 12)"))
    clr = {s: series[s]["clr-1.1"] for s in SECTIONS}
    ratio = clr["Matrix:MultiDim"] / clr["Matrix:Jagged"]
    print()
    print(f"CLR 1.1 multidim/jagged ratio: {ratio:.2f} "
          f"(paper: 'run at 25 percent of the performance of jagged arrays')")
    native = {s: series[s]["native-c"] for s in SECTIONS}
    print(f"native C multidim/jagged ratio: "
          f"{native['Matrix:MultiDim'] / native['Matrix:Jagged']:.2f} "
          f"(compiled code pays almost no multidim penalty)")


if __name__ == "__main__":
    main()
