#!/usr/bin/env python3
"""Grande application suite — the Table 4 kernels beyond SciMark (FFT et
al.): Fibonacci, Sieve, Hanoi, HeapSort, IDEA Crypt, MolDyn, Euler,
connect-4 Search and the RayTracer, across the four micro-study VMs.

Every kernel validates its own computation (round trips, invariants,
conservation laws) and the harness additionally asserts all runtimes
computed identical results.

Run:  python examples/grande_suite.py [--fast]
"""

import sys

from repro.benchmarks import get
from repro.harness.charts import table
from repro.harness.runner import Runner
from repro.runtimes import MICRO_PROFILES

KERNELS = (
    "grande.fibonacci", "grande.sieve", "grande.hanoi", "grande.heapsort",
    "grande.crypt", "grande.moldyn", "grande.euler", "grande.search",
    "grande.raytracer",
)

FAST_OVERRIDES = {
    "grande.fibonacci": {"N": 15},
    "grande.sieve": {"Limit": 3000},
    "grande.hanoi": {"Disks": 11},
    "grande.heapsort": {"N": 1000},
    "grande.crypt": {"Words": 256},
    "grande.moldyn": {"MM": 2, "Steps": 2},
    "grande.euler": {"N": 6, "Steps": 2},
    "grande.search": {"Depth": 3},
    "grande.raytracer": {"Size": 8},
}


def main() -> None:
    fast = "--fast" in sys.argv
    runner = Runner(profiles=MICRO_PROFILES, clock_hz=2.8e9)
    rows = {}
    for name in KERNELS:
        bench = get(name)
        overrides = FAST_OVERRIDES[name] if fast else None
        runs = runner.run(name, overrides)
        section = bench.sections[0]
        rows[section] = {
            p: r.section(section).ops_per_sec for p, r in runs.items()
        }
        sample = next(iter(runs.values())).section(section)
        print(f"{name:<20} validated; results = "
              f"{[round(v, 4) for v in sample.results]}")
    print()
    print(table(rows, columns=[p.name for p in MICRO_PROFILES],
                value_format="{:.3e}", row_header="kernel (ops/sec)"))


if __name__ == "__main__":
    main()
