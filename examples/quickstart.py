#!/usr/bin/env python3
"""Quickstart: compile a Kernel-C# program once, run it on several virtual
machines, and compare simulated performance — the paper's core methodology
in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro.lang import compile_source
from repro.runtimes import CLR11, IBM131, MONO023, SSCLI10
from repro.vm.loader import LoadedAssembly
from repro.vm.machine import Machine

SOURCE = """
class Hello {
    static double Main() {
        Bench.Start("work");
        double total = 0.0;
        for (int i = 1; i <= 50000; i++) {
            total += Math.Sqrt((double)i);
        }
        Bench.Stop("work");
        Bench.Ops("work", 50000L);
        Console.WriteLine("sum of sqrt 1..50000 = " + total);
        return total;
    }
}
"""


def main() -> None:
    # one compile — the same CIL image runs on every virtual machine
    assembly = compile_source(SOURCE, assembly_name="quickstart")

    print(f"{'runtime':<12} {'result':>20} {'cycles':>14} {'ops/sec':>12}")
    print("-" * 62)
    for profile in (IBM131, CLR11, MONO023, SSCLI10):
        machine = Machine(LoadedAssembly(assembly), profile)
        result = machine.run()
        section = machine.bench.sections["work"]
        print(
            f"{profile.name:<12} {result:>20.6f} {machine.cycles:>14.0f} "
            f"{section.ops_per_sec(profile.clock_hz):>12.3e}"
        )
    print()
    print("Same answer everywhere; only the cycle counts differ —")
    print("that difference is the modelled JIT quality (paper section 5).")


if __name__ == "__main__":
    main()
