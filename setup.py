"""Setuptools shim so `pip install -e .` works on environments without the
`wheel` package (legacy editable install path). Configuration lives in
pyproject.toml."""
from setuptools import setup

setup()
